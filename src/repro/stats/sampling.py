"""Sampling schemes over follower positions.

Followers are addressed by arrival *position* (0 = earliest).  The
schemes here are the ones the paper contrasts:

* :func:`uniform_sample` — the statistically sound scheme used by the
  FC engine: every follower equally likely, drawn without replacement
  from the whole list;
* :func:`head_sample` — what the commercial analytics actually do:
  take the newest ``k`` followers (the head of Twitter's newest-first
  listing), a deterministic, biased frame;
* :func:`systematic_sample` — evenly spaced positions, included as a
  cheap low-variance alternative for ablations.
"""

from __future__ import annotations

import random
from typing import List

from ..core.errors import SamplingError


def uniform_sample(rng: random.Random, population_size: int, n: int) -> List[int]:
    """Draw ``n`` distinct positions uniformly from ``[0, population_size)``.

    Returned sorted (chronological order) for cache-friendly account
    materialisation; order carries no information since the draw is
    exchangeable.
    """
    _validate(population_size, n)
    return sorted(rng.sample(range(population_size), n))


def head_sample(population_size: int, n: int) -> List[int]:
    """The newest ``n`` positions — the biased frame of the criticised tools.

    Equivalent to fetching the first ``n`` ids from ``followers/ids``
    and keeping them all: "the followers taken into consideration are
    just the latest ones to have joined" (paper, Section II-D).
    """
    _validate(population_size, n)
    return list(range(population_size - n, population_size))


def head_then_subsample(rng: random.Random, population_size: int,
                        head: int, n: int) -> List[int]:
    """Random subsample of the newest ``head`` positions.

    This is the scheme the surveyed analytics document: e.g.
    StatusPeople assesses 700 records "across a follower base of up to
    35K" — random *within the head*, but the head itself is still a
    biased frame.
    """
    _validate(population_size, n)
    head = min(head, population_size)
    if n > head:
        raise SamplingError(
            f"cannot draw {n} from a head of {head}")
    offset = population_size - head
    return sorted(offset + pos for pos in rng.sample(range(head), n))


def systematic_sample(population_size: int, n: int, start: int = 0) -> List[int]:
    """Every ``population_size / n``-th position, from offset ``start``."""
    _validate(population_size, n)
    if not 0 <= start < population_size:
        raise SamplingError(f"start must be in [0, {population_size}): {start!r}")
    step = population_size / n
    positions = []
    for index in range(n):
        position = (start + int(index * step)) % population_size
        positions.append(position)
    return sorted(set(positions))


def _validate(population_size: int, n: int) -> None:
    if population_size < 0:
        raise SamplingError(
            f"population_size must be >= 0: {population_size!r}")
    if not 0 < n <= population_size:
        raise SamplingError(
            f"sample size must be in (0, {population_size}]: {n!r}")
