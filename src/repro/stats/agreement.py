"""Inter-tool agreement statistics.

Table III's qualitative reading — "there is a general disagreement on
such results" — deserves numbers.  Given several tools' estimates of
the same quantity (e.g. fake percentage) over the same set of targets,
this module computes:

* the pairwise mean-absolute-difference matrix (which tools tell
  similar stories, in points);
* Kendall's tau-b per tool pair (do the tools at least *rank* targets
  the same way, even when their absolute numbers differ?);
* a single disagreement index (mean per-target standard deviation).

These power the quantified claims in ``analyse_disagreement`` and are
reusable for any future multi-tool comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class AgreementMatrix:
    """Pairwise agreement between tools over a shared target set."""

    tools: Tuple[str, ...]
    #: (tool_a, tool_b) -> mean |a - b| in the estimates' own units.
    mean_abs_diff: Mapping[Tuple[str, str], float]
    #: (tool_a, tool_b) -> Kendall tau-b rank correlation in [-1, 1].
    kendall_tau: Mapping[Tuple[str, str], float]
    #: Mean per-target population std-dev across tools.
    disagreement_index: float

    def closest_pair(self) -> Tuple[str, str]:
        """The pair of tools with the smallest mean absolute difference."""
        return min(self.mean_abs_diff, key=lambda pair: self.mean_abs_diff[pair])

    def most_discordant_pair(self) -> Tuple[str, str]:
        """The pair of tools with the largest mean absolute difference."""
        return max(self.mean_abs_diff, key=lambda pair: self.mean_abs_diff[pair])


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall's tau-b, with the standard tie correction.

    O(n^2), which is ample for tens of targets.  Returns 0 when either
    sequence is entirely tied.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        raise ConfigurationError("need at least two observations")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            if dx == 0 and dy == 0:
                continue
            if dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    denominator = math.sqrt(
        (concordant + discordant + ties_x)
        * (concordant + discordant + ties_y))
    if denominator == 0:
        return 0.0
    return (concordant - discordant) / denominator


def agreement_matrix(estimates: Mapping[str, Sequence[float]]
                     ) -> AgreementMatrix:
    """Compute all agreement statistics for named estimate vectors.

    ``estimates`` maps tool name to its per-target estimates; every
    tool must cover the same targets in the same order.
    """
    if len(estimates) < 2:
        raise ConfigurationError("need at least two tools to compare")
    lengths = {len(values) for values in estimates.values()}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"all tools must cover the same targets; got lengths {lengths}")
    (n,) = lengths
    if n < 2:
        raise ConfigurationError("need at least two targets")

    tools = tuple(sorted(estimates))
    diffs: Dict[Tuple[str, str], float] = {}
    taus: Dict[Tuple[str, str], float] = {}
    for index, tool_a in enumerate(tools):
        for tool_b in tools[index + 1:]:
            a = estimates[tool_a]
            b = estimates[tool_b]
            diffs[(tool_a, tool_b)] = sum(
                abs(x - y) for x, y in zip(a, b)) / n
            taus[(tool_a, tool_b)] = kendall_tau(a, b)

    per_target_std: List[float] = []
    for position in range(n):
        values = [estimates[tool][position] for tool in tools]
        mean = sum(values) / len(values)
        per_target_std.append(math.sqrt(
            sum((v - mean) ** 2 for v in values) / len(values)))
    return AgreementMatrix(
        tools=tools,
        mean_abs_diff=diffs,
        kendall_tau=taus,
        disagreement_index=sum(per_target_std) / n,
    )
