"""Proportion estimation, confidence intervals, sample-size arithmetic.

This module implements the statistical machinery the paper recalls in
Section II-D: estimating the proportion ``p`` of a population holding a
property from a sample of size ``n`` via ``p_hat = X / n``, with
standard error ``sqrt(p_hat * (1 - p_hat) / n)`` and normal-approximate
confidence intervals ``p_hat ± Z_alpha * sigma`` — and the inverse
problem that fixes the FC engine's sample size at **9604** (95 %
confidence, ±1 % margin, worst case p = 0.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..core.errors import ConfigurationError

#: Critical values quoted by the paper for the two usual confidence levels.
Z_95 = 1.96
Z_99 = 2.58

_Z_TABLE = {0.90: 1.6449, 0.95: Z_95, 0.99: Z_99}


def z_critical(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level in (0, 1).

    The paper's levels (0.95 -> 1.96, 0.99 -> 2.58) are table exact; any
    other level is computed from the inverse error function.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1): {confidence!r}")
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    # Inverse CDF via the inverse error function: z = sqrt(2) * erfinv(c).
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, |err| < 5e-4)."""
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), x)


@dataclass(frozen=True)
class ProportionEstimate:
    """A sample-based estimate of a population proportion."""

    positives: int
    sample_size: int

    def __post_init__(self) -> None:
        if self.sample_size < 1:
            raise ConfigurationError(
                f"sample_size must be >= 1: {self.sample_size!r}")
        if not 0 <= self.positives <= self.sample_size:
            raise ConfigurationError(
                f"positives must be in [0, {self.sample_size}]: {self.positives!r}")

    @property
    def p_hat(self) -> float:
        """The point estimate ``X / n``."""
        return self.positives / self.sample_size

    @property
    def std_error(self) -> float:
        """``sqrt(p_hat * (1 - p_hat) / n)`` — the paper's sigma."""
        p = self.p_hat
        return math.sqrt(p * (1.0 - p) / self.sample_size)

    def margin(self, confidence: float = 0.95) -> float:
        """Half-width of the normal-approximate confidence interval."""
        return z_critical(confidence) * self.std_error

    def wald_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """``p_hat ± Z * sigma``, clipped to [0, 1] (the paper's interval)."""
        half = self.margin(confidence)
        return max(0.0, self.p_hat - half), min(1.0, self.p_hat + half)

    def wilson_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Wilson score interval — better behaved near p = 0 or 1.

        Provided alongside Wald because fake-follower proportions of
        clean accounts sit exactly in the regime where Wald misbehaves.
        """
        z = z_critical(confidence)
        n = self.sample_size
        p = self.p_hat
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        half = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
        return max(0.0, centre - half), min(1.0, centre + half)


def required_sample_size(margin: float, confidence: float = 0.95,
                         p: float = 0.5) -> int:
    """Smallest n with ``Z * sqrt(p (1-p) / n) <= margin``.

    With the conservative ``p = 0.5``, a 95 % level and a ±1 % margin
    this returns **9604** — the FC engine's fixed sample size (paper,
    Section IV-C).
    """
    if not 0.0 < margin < 1.0:
        raise ConfigurationError(f"margin must be in (0, 1): {margin!r}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1]: {p!r}")
    z = z_critical(confidence)
    return math.ceil((z / margin) ** 2 * p * (1.0 - p))


def finite_population_correction(n: int, population: int) -> float:
    """FPC factor ``sqrt((N - n) / (N - 1))`` for without-replacement sampling."""
    if population < 1:
        raise ConfigurationError(f"population must be >= 1: {population!r}")
    if not 1 <= n <= population:
        raise ConfigurationError(
            f"sample size must be in [1, {population}]: {n!r}")
    if population == 1:
        return 0.0
    return math.sqrt((population - n) / (population - 1))


def required_sample_size_fpc(margin: float, population: int,
                             confidence: float = 0.95,
                             p: float = 0.5) -> int:
    """Sample size with finite-population correction.

    For bases much larger than 9604 this converges to
    :func:`required_sample_size`; for small bases it shrinks toward the
    population itself (no point sampling 9604 from 2971 followers).
    """
    n0 = required_sample_size(margin, confidence, p)
    if population < 1:
        raise ConfigurationError(f"population must be >= 1: {population!r}")
    corrected = math.ceil(n0 / (1.0 + (n0 - 1) / population))
    return min(corrected, population)


def achieved_margin(n: int, confidence: float = 0.95, p: float = 0.5) -> float:
    """Margin of error a sample of size ``n`` achieves (worst case p = 0.5).

    The inverse view used by the ablation sweep: StatusPeople's 700
    records give ±3.7 %, Twitteraudit's 5000 give ±1.4 %, FC's 9604 give
    ±1 % — *if and only if* the sample is unbiased, which is precisely
    what head-of-list sampling violates.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n!r}")
    return z_critical(confidence) * math.sqrt(p * (1.0 - p) / n)
