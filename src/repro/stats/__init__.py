"""Sampling statistics: estimation, sampling, bias, inter-tool agreement."""

from .agreement import AgreementMatrix, agreement_matrix, kendall_tau
from .bias import (
    BiasReport,
    gradient_head_bias,
    head_sampling_bias,
    purchased_burst_rates,
)
from .estimation import (
    ProportionEstimate,
    Z_95,
    Z_99,
    achieved_margin,
    finite_population_correction,
    required_sample_size,
    required_sample_size_fpc,
    z_critical,
)
from .sampling import (
    head_sample,
    head_then_subsample,
    systematic_sample,
    uniform_sample,
)

__all__ = [
    "AgreementMatrix",
    "BiasReport",
    "ProportionEstimate",
    "Z_95",
    "Z_99",
    "achieved_margin",
    "agreement_matrix",
    "finite_population_correction",
    "gradient_head_bias",
    "head_sample",
    "head_sampling_bias",
    "head_then_subsample",
    "kendall_tau",
    "purchased_burst_rates",
    "required_sample_size",
    "required_sample_size_fpc",
    "systematic_sample",
    "uniform_sample",
    "z_critical",
]
