"""Quantifying the bias of head-of-list sampling.

Section II-D of the paper argues that the surveyed analytics violate
all three assumptions of sound proportion estimation: (i) the sample
frame is the newest-``k`` head of the follower list, not the whole
population; (ii) draws are confined to that frame rather than
independent over the population; (iii) the property test itself (the
fake detector) is unvalidated.  This module measures the damage done by
(i)–(ii): the difference between a property's rate in the head frame
and in the whole population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..core.errors import SamplingError


@dataclass(frozen=True)
class BiasReport:
    """Head-frame vs whole-population rate of one property."""

    population_size: int
    head_size: int
    whole_rate: float
    head_rate: float

    @property
    def absolute_bias(self) -> float:
        """``head_rate - whole_rate`` (positive = head overestimates)."""
        return self.head_rate - self.whole_rate

    @property
    def relative_bias(self) -> float:
        """Absolute bias normalised by the whole-population rate."""
        if self.whole_rate == 0:
            return float("inf") if self.head_rate > 0 else 0.0
        return self.absolute_bias / self.whole_rate


def head_sampling_bias(
        property_at: Callable[[int], bool],
        population_size: int,
        head_size: int,
        *,
        positions: Optional[Iterable[int]] = None,
) -> BiasReport:
    """Measure a boolean property's rate in the head frame vs overall.

    ``property_at(position)`` evaluates the property for the follower at
    arrival ``position``.  With ``positions`` given, the whole-population
    rate is estimated over that subset only (useful when evaluating all
    of a 41 M base would be prohibitive); the head frame is always
    evaluated exhaustively.
    """
    if population_size < 1:
        raise SamplingError(f"population_size must be >= 1: {population_size!r}")
    if not 0 < head_size <= population_size:
        raise SamplingError(
            f"head_size must be in (0, {population_size}]: {head_size!r}")
    if positions is None:
        frame: Sequence[int] = range(population_size)
    else:
        frame = sorted(set(positions))
        if not frame:
            raise SamplingError("positions must be non-empty")
        if frame[0] < 0 or frame[-1] >= population_size:
            raise SamplingError("positions out of range")
    whole_hits = sum(1 for position in frame if property_at(position))
    whole_rate = whole_hits / len(frame)
    head_start = population_size - head_size
    head_hits = sum(
        1 for position in range(head_start, population_size)
        if property_at(position))
    return BiasReport(
        population_size=population_size,
        head_size=head_size,
        whole_rate=whole_rate,
        head_rate=head_hits / head_size,
    )


def purchased_burst_rates(genuine: int, purchased: int,
                          head_size: int) -> BiasReport:
    """The paper's worked example (Section II-A/II-D), in closed form.

    An account with ``genuine`` real followers buys ``purchased`` fakes,
    which — being the latest arrivals — fill the head of the follower
    list.  A head sample of ``head_size`` then reports a fake rate of
    ``min(purchased, head_size) / head_size``, while the true rate is
    ``purchased / (genuine + purchased)``.  With 100 K genuine + 10 K
    bought and a 1 K head sample: head says 100 % fake, truth is ~9 %.
    """
    if genuine < 0 or purchased < 0:
        raise SamplingError("counts must be non-negative")
    total = genuine + purchased
    if total == 0:
        raise SamplingError("population must be non-empty")
    if not 0 < head_size <= total:
        raise SamplingError(f"head_size must be in (0, {total}]: {head_size!r}")
    head_fakes = min(purchased, head_size)
    return BiasReport(
        population_size=total,
        head_size=head_size,
        whole_rate=purchased / total,
        head_rate=head_fakes / head_size,
    )


def gradient_head_bias(base_rate: float, tilt: float,
                       head_fraction: float) -> float:
    """Analytic head bias under a linear inactivity gradient.

    If the property rate at relative arrival position ``x`` in [0, 1] is
    ``base_rate * (1 + tilt * (1 - 2x))`` (the model used by
    :func:`repro.twitter.tilted_segments`), the head frame covering the
    newest ``head_fraction`` of the base has mean rate

        ``base_rate * (1 - tilt * (1 - head_fraction))``

    so the absolute bias is ``-base_rate * tilt * (1 - head_fraction)``:
    head samples *underestimate* inactivity, exactly the direction the
    paper observes for Socialbakers and StatusPeople vs FC.
    """
    if not 0.0 <= base_rate <= 1.0:
        raise SamplingError(f"base_rate must be in [0, 1]: {base_rate!r}")
    if not 0.0 <= tilt < 1.0:
        raise SamplingError(f"tilt must be in [0, 1): {tilt!r}")
    if not 0.0 < head_fraction <= 1.0:
        raise SamplingError(
            f"head_fraction must be in (0, 1]: {head_fraction!r}")
    return -base_rate * tilt * (1.0 - head_fraction)
