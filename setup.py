"""Setuptools shim.

The offline toolchain on some hosts lacks the ``wheel`` package, which
PEP 517 editable installs require; this shim lets ``pip install -e .``
fall back to the legacy setuptools develop path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
