"""Unit tests for the hosted web-application layer."""

import pytest

from repro.analytics import (
    DEFAULT_PERMISSIONS,
    HostedCheckerApp,
    StatusPeopleFakers,
)
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, SimClock
from repro.core.errors import AuthorizationError, QuotaExceededError


@pytest.fixture
def app(small_world):
    engine = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=6)
    return HostedCheckerApp(engine, daily_checks_per_user=3)


class TestAuthorization:
    def test_screen_lists_operations(self, app):
        screen = app.authorization_screen()
        assert "Authorize statuspeople" in screen
        for operation in DEFAULT_PERMISSIONS:
            assert operation in screen

    def test_check_requires_authorization(self, app):
        from repro.analytics.webapp import AppSession
        forged = AppSession(token="tok-999", user_handle="eve",
                            granted_at=0.0, permissions=())
        with pytest.raises(AuthorizationError):
            app.check(forged, "smalltown")

    def test_authorized_flow(self, app):
        session = app.authorize("curious_user")
        report = app.check(session, "smalltown")
        assert report.tool == "statuspeople"
        page = app.report_page(report)
        assert "Results for @smalltown" in page
        assert "fake:" in page and "inactive:" in page

    def test_revocation_blocks_further_checks(self, app):
        session = app.authorize("curious_user")
        app.check(session, "smalltown")
        app.revoke(session)
        with pytest.raises(AuthorizationError):
            app.check(session, "smalltown")

    def test_empty_handle_rejected(self, app):
        with pytest.raises(ConfigurationError):
            app.authorize("  ")


class TestQuota:
    def test_daily_limit_enforced_per_session(self, app):
        session = app.authorize("heavy_user")
        for __ in range(3):
            app.check(session, "smalltown")
        with pytest.raises(QuotaExceededError):
            app.check(session, "smalltown")

    def test_other_sessions_unaffected(self, app):
        first = app.authorize("one")
        second = app.authorize("two")
        for __ in range(3):
            app.check(first, "smalltown")
        app.check(second, "smalltown")  # fresh quota

    def test_quota_resets_daily(self, app):
        session = app.authorize("patient_user")
        for __ in range(3):
            app.check(session, "smalltown")
        app.engine.client.clock.advance(DAY)
        app.check(session, "smalltown")

    def test_unlimited_when_disabled(self, small_world):
        engine = StatusPeopleFakers(
            small_world, SimClock(PAPER_EPOCH), seed=6)
        app = HostedCheckerApp(engine, daily_checks_per_user=None)
        session = app.authorize("power_user")
        for __ in range(15):
            app.check(session, "smalltown")

    def test_validation(self, small_world):
        engine = StatusPeopleFakers(
            small_world, SimClock(PAPER_EPOCH), seed=6)
        with pytest.raises(ConfigurationError):
            HostedCheckerApp(engine, daily_checks_per_user=0)
        with pytest.raises(ConfigurationError):
            HostedCheckerApp(engine, permissions=())


class TestWithFcEngine:
    def test_wraps_the_fc_engine_too(self, small_world, detector):
        from repro.fc import FakeClassifierEngine
        engine = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector, sample_size=300)
        app = HostedCheckerApp(engine)
        session = app.authorize("researcher")
        report = app.check(session, "smalltown")
        assert report.tool == "fc"
        assert "previously computed" not in app.report_page(report)

    def test_cached_answers_disclosed(self, app):
        session = app.authorize("curious_user")
        app.check(session, "smalltown")
        second = app.check(session, "smalltown")
        assert second.cached
        assert "previously computed" in app.report_page(second)


class TestStatusPage:
    def test_degrades_without_live_telemetry(self, app):
        page = app.status_page()
        assert "statuspeople service status" in page
        assert "live telemetry: not attached" in page

    def test_reads_the_attached_telemetry_plane(self, small_world):
        from repro.obs import Observability, observed
        from repro.obs.live import LiveTelemetry, SloSpec

        obs = Observability(SimClock(PAPER_EPOCH))
        live = LiveTelemetry(origin=PAPER_EPOCH, pane_width=DAY)
        live.value_stream("checks.total")
        live.value_stream("checks.ok")
        live.add_slo(SloSpec(
            name="check-success", good_stream="checks.ok",
            total_stream="checks.total", objective=0.9,
            fast_horizon=DAY, slow_horizon=3 * DAY,
            burn_threshold=2.0, min_events=1))
        live.alerts.fire(PAPER_EPOCH, "burst:suspect", severity="page")
        obs.attach_live(live)
        with observed(obs):
            # Engines capture the active observability at construction,
            # so the instrumented app is built inside the context.
            engine = StatusPeopleFakers(
                small_world, SimClock(PAPER_EPOCH), seed=6)
            app = HostedCheckerApp(engine, daily_checks_per_user=3)
            session = app.authorize("curious_user")
            app.check(session, "smalltown")
            page = app.status_page()
        assert "alerts: 1 active (1 fired, 0 resolved): burst:suspect" in page
        assert "slo check-success" in page
        assert "audits completed: 1" in page
