"""Unit tests for the commercial-analytic skeleton: caching, reporting."""

import pytest

from repro.audit import AuditRequest
from repro.analytics import ResultCache, StatusPeopleFakers, percentages
from repro.analytics.base import AnalysisOutcome
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, SimClock


def outcome(**overrides):
    defaults = dict(
        followers_count=1000, sample_size=100,
        fake_pct=10.0, genuine_pct=60.0, inactive_pct=30.0, details={})
    defaults.update(overrides)
    return AnalysisOutcome(**defaults)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("x", 0.0) is None
        cache.put("x", outcome(), 5.0)
        hit = cache.get("x", 100.0)
        assert hit is not None
        assert hit[1] == 5.0

    def test_keys_case_insensitive(self):
        cache = ResultCache()
        cache.put("Alice", outcome(), 0.0)
        assert cache.get("ALICE", 1.0) is not None
        assert "alice" in cache

    def test_ttl_expiry(self):
        cache = ResultCache(ttl=10.0)
        cache.put("x", outcome(), 0.0)
        assert cache.get("x", 9.0) is not None
        assert cache.get("x", 11.0) is None
        assert len(cache) == 0  # expired entries are evicted

    def test_invalid_ttl(self):
        with pytest.raises(ConfigurationError):
            ResultCache(ttl=0.0)


class TestResultCacheLRU:
    def test_bound_evicts_oldest_entry_first(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", outcome(), 0.0)
        cache.put("b", outcome(), 1.0)
        cache.put("c", outcome(), 2.0)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", outcome(), 0.0)
        cache.put("b", outcome(), 1.0)
        cache.get("a", 2.0)  # a becomes most recently used
        cache.put("c", outcome(), 3.0)
        assert "a" in cache
        assert "b" not in cache

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", outcome(), 0.0)
        cache.put("b", outcome(), 1.0)
        cache.put("a", outcome(), 2.0)  # same key, refreshed
        assert cache.size() == 2
        assert cache.evictions == 0

    def test_size_tracks_live_entries(self):
        cache = ResultCache(max_entries=3)
        assert cache.size() == 0
        for i, key in enumerate("abc"):
            cache.put(key, outcome(), float(i))
        assert cache.size() == len(cache) == 3
        cache.put("d", outcome(), 4.0)
        assert cache.size() == 3

    def test_unbounded_cache_never_evicts(self):
        cache = ResultCache()
        for i in range(100):
            cache.put(f"user{i}", outcome(), float(i))
        assert cache.size() == 100
        assert cache.evictions == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)


class TestPercentages:
    def test_sums_to_exactly_100(self):
        pct = percentages({"a": 1, "b": 1, "c": 1}, 3)
        assert sum(pct.values()) == pytest.approx(100.0, abs=0.01)

    def test_simple_case(self):
        pct = percentages({"fake": 25, "good": 75}, 100)
        assert pct == {"fake": 25.0, "good": 75.0}

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            percentages({"a": 0}, 0)


class TestAuditCaching:
    @pytest.fixture
    def tool(self, small_world):
        return StatusPeopleFakers(
            small_world, SimClock(PAPER_EPOCH), seed=1)

    def test_first_audit_fresh_then_cached(self, tool):
        first = tool.audit(AuditRequest(target="smalltown"))
        assert not first.cached
        assert first.response_seconds > 10
        second = tool.audit(AuditRequest(target="smalltown"))
        assert second.cached
        assert second.response_seconds < 5
        assert second.assessed_at < tool.client.clock.now()

    def test_cached_result_identical_percentages(self, tool):
        first = tool.audit(AuditRequest(target="smalltown"))
        second = tool.audit(AuditRequest(target="smalltown"))
        assert second.fake_pct == first.fake_pct
        assert second.inactive_pct == first.inactive_pct

    def test_force_refresh_bypasses_cache(self, tool):
        tool.audit(AuditRequest(target="smalltown"))
        refreshed = tool.audit(AuditRequest(target="smalltown", force_refresh=True))
        assert not refreshed.cached
        assert refreshed.response_seconds > 10

    def test_prewarm_makes_first_request_cached(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=1)
        tool.prewarm(["smalltown"])
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.cached
        assert report.response_seconds < 5

    def test_prewarm_idempotent(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=1)
        tool.prewarm(["smalltown"])
        before = tool.client.clock.now()
        tool.prewarm(["smalltown"])  # no second analysis
        assert tool.client.clock.now() == before

    def test_ttl_expiry_triggers_reanalysis(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        tool = StatusPeopleFakers(
            small_world, clock, seed=1, cache_ttl=2 * DAY)
        tool.audit(AuditRequest(target="smalltown"))
        clock.advance(3 * DAY)
        report = tool.audit(AuditRequest(target="smalltown"))
        assert not report.cached
