"""Unit tests for the Socialbakers Fake Follower Check re-implementation."""

import pytest

from repro.audit import AuditRequest
from repro.analytics import (
    SB_DAILY_QUOTA,
    SB_SAMPLE,
    SocialbakersFakeFollowerCheck,
)
from repro.core import DAY, PAPER_EPOCH, SimClock
from repro.core.errors import QuotaExceededError
from repro.twitter import add_simple_target, build_world


@pytest.fixture
def tool(small_world):
    return SocialbakersFakeFollowerCheck(
        small_world, SimClock(PAPER_EPOCH), seed=3)


class TestAudit:
    def test_considers_up_to_2000_followers(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.sample_size == SB_SAMPLE

    def test_small_account_sampled_entirely(self, detector):
        world = build_world(seed=6)
        add_simple_target(world, "small", 800, 0.2, 0.1, 0.7)
        tool = SocialbakersFakeFollowerCheck(
            world, SimClock(PAPER_EPOCH), seed=3)
        assert tool.audit(AuditRequest(target="small")).sample_size == 800

    def test_fetches_timelines_for_content_rules(self, tool):
        tool.audit(AuditRequest(target="smalltown"))
        assert tool.client.call_log.count("statuses/user_timeline") \
            == SB_SAMPLE

    def test_fast_despite_timeline_crawl(self, tool):
        """The paper's Table II: ~10 s — only possible with a fleet."""
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.response_seconds < 20

    def test_reports_all_three_classes(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.inactive_pct is not None
        total = report.fake_pct + report.genuine_pct + report.inactive_pct
        assert total == pytest.approx(100.0, abs=0.2)

    def test_inactive_understated_vs_truth(self, tool, small_world):
        """Only suspicious accounts are tested for inactivity, so SB's
        inactive share sits far below the ground truth (40%)."""
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.inactive_pct < 25.0

    def test_details_document_methodology(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.details["declared_error_margin"] == "10-15%"


class TestQuota:
    def test_ten_audits_per_day(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        tool = SocialbakersFakeFollowerCheck(small_world, clock, seed=3)
        for _ in range(SB_DAILY_QUOTA):
            tool.audit(AuditRequest(target="smalltown"))  # cached after the first — still counted
        with pytest.raises(QuotaExceededError):
            tool.audit(AuditRequest(target="smalltown"))

    def test_quota_resets_next_day(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        tool = SocialbakersFakeFollowerCheck(
            small_world, clock, daily_quota=2, seed=3)
        tool.audit(AuditRequest(target="smalltown"))
        tool.audit(AuditRequest(target="smalltown"))
        with pytest.raises(QuotaExceededError):
            tool.audit(AuditRequest(target="smalltown"))
        clock.advance(DAY)
        tool.audit(AuditRequest(target="smalltown"))  # fresh day, fresh quota
