"""Edge cases of the batch-criteria API's mask pipelines.

The differential parity suite (``tests/twitter/test_columnar_parity``)
proves scalar/columnar bit-identity on realistic populations; this file
covers the degenerate corners those worlds never produce — empty
samples, all-fake samples, and hosts without NumPy — for each of the
three rule-based engines.
"""

import pytest

from repro.analytics import (
    SocialbakersFakeFollowerCheck,
    StatusPeopleCriteria,
    StatusPeopleFakers,
    Twitteraudit,
    TwitterauditCriteria,
    build_sample_block,
)
from repro.analytics import criteria as criteria_module
from repro.api import UserObject
from repro.audit import AuditRequest
from repro.core import DAY, PAPER_EPOCH, SimClock, YEAR
from repro.fc.rulesets import SocialbakersCriteria

NOW = PAPER_EPOCH


def make_user(**overrides):
    defaults = dict(
        user_id=1, screen_name="u", name="User",
        created_at=PAPER_EPOCH - YEAR,
        description="bio", location="Rome", url="",
        default_profile_image=False, verified=False,
        followers_count=200, friends_count=180, statuses_count=500,
        last_status_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return UserObject(**defaults)


#: One obviously-fake profile per engine's criteria.
FAKES = {
    "statuspeople": dict(followers_count=3, friends_count=800,
                         statuses_count=2),
    # Suspicious (ratio + empty profile) but active, so the published
    # flow lands on "fake" rather than "inactive".
    "socialbakers": dict(followers_count=10, friends_count=500,
                         description="", location=""),
    "twitteraudit": dict(statuses_count=0, last_status_at=None,
                         followers_count=10, friends_count=500),
}

#: A mixed sample touching every verdict class of every engine.
MIXED = [
    make_user(user_id=1),                                     # engaged human
    make_user(user_id=2, **FAKES["statuspeople"]),
    make_user(user_id=3, **FAKES["socialbakers"]),
    make_user(user_id=4, **FAKES["twitteraudit"]),
    make_user(user_id=5, last_status_at=PAPER_EPOCH - 40 * DAY),
    make_user(user_id=6, last_status_at=PAPER_EPOCH - 100 * DAY),
    make_user(user_id=7, followers_count=0, friends_count=0,
              statuses_count=1, last_status_at=PAPER_EPOCH - 200 * DAY),
    make_user(user_id=8, default_profile_image=True,
              created_at=PAPER_EPOCH - 10 * DAY),
]

ENGINE_CRITERIA = [
    ("statuspeople", StatusPeopleCriteria(), False),
    ("socialbakers", SocialbakersCriteria(), True),
    ("twitteraudit", TwitterauditCriteria(), False),
]

IDS = [name for name, __, __ in ENGINE_CRITERIA]


@pytest.mark.parametrize("name,criteria,timelined", ENGINE_CRITERIA, ids=IDS)
class TestMaskPipelineEdges:
    def test_empty_sample(self, name, criteria, timelined):
        block = build_sample_block([], [] if timelined else None)
        assert block is not None and len(block) == 0
        verdicts = criteria.classify_block(block, NOW)
        assert len(verdicts) == 0
        assert all(count == 0 for count in verdicts.counts().values())
        scalar = criteria.classify_all([], [] if timelined else None, NOW)
        assert verdicts.counts() == scalar.counts()

    def test_all_fake_sample(self, name, criteria, timelined):
        users = [make_user(user_id=i, **FAKES[name]) for i in range(7)]
        timelines = [[] for __ in users] if timelined else None
        verdicts = criteria.classify_block(
            build_sample_block(users, timelines), NOW)
        assert verdicts.counts()[criteria.labels[0]] == len(users)
        assert list(verdicts.codes) == [0] * len(users)

    def test_mixed_sample_matches_scalar(self, name, criteria, timelined):
        timelines = ([None if user.user_id % 3 == 0 else []
                      for user in MIXED] if timelined else None)
        block_verdicts = criteria.classify_block(
            build_sample_block(MIXED, timelines), NOW)
        scalar_verdicts = criteria.classify_all(MIXED, timelines, NOW)
        assert list(block_verdicts.codes) == list(scalar_verdicts.codes)
        assert block_verdicts.counts() == scalar_verdicts.counts()
        assert block_verdicts.extras == scalar_verdicts.extras

    def test_row_block_sample_matches_scalar(self, name, criteria, timelined):
        """The structured-rows fast path (field views) stays identical."""
        from repro.twitter.columnar.schema import UserRowBlock

        timelines = [[] for __ in MIXED] if timelined else None
        block_verdicts = criteria.classify_block(
            build_sample_block(UserRowBlock.from_users(MIXED), timelines),
            NOW)
        scalar_verdicts = criteria.classify_all(MIXED, timelines, NOW)
        assert list(block_verdicts.codes) == list(scalar_verdicts.codes)
        assert block_verdicts.counts() == scalar_verdicts.counts()
        assert block_verdicts.extras == scalar_verdicts.extras


class TestNumpyAbsentFallback:
    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        """Simulate a NumPy-less host for the whole criteria layer."""
        monkeypatch.setattr(criteria_module, "_import_numpy", lambda: None)

    def test_sample_block_unavailable(self):
        assert build_sample_block(MIXED) is None

    @pytest.mark.parametrize("factory", [
        StatusPeopleFakers, SocialbakersFakeFollowerCheck, Twitteraudit,
    ], ids=["statuspeople", "socialbakers", "twitteraudit"])
    def test_engine_falls_back_to_scalar(self, factory, small_world,
                                         monkeypatch):
        request = AuditRequest(target="smalltown")
        batched = factory(small_world, SimClock(PAPER_EPOCH), seed=1,
                          batch="auto")
        assert not batched.batch_active()
        report = batched.audit(request)
        monkeypatch.undo()  # reference run with NumPy restored
        scalar = factory(small_world, SimClock(PAPER_EPOCH), seed=1,
                         batch=False)
        assert report == scalar.audit(request)
