"""Unit tests for the Twitteraudit re-implementation."""

import pytest

from repro.audit import AuditRequest
from repro.analytics import (
    RealScore,
    TA_MAX_POINTS,
    TA_SAMPLE,
    Twitteraudit,
    real_score,
)
from repro.api import UserObject
from repro.core import DAY, PAPER_EPOCH, SimClock, YEAR

NOW = PAPER_EPOCH


def make_user(**overrides):
    defaults = dict(
        user_id=1, screen_name="u", name="User",
        created_at=PAPER_EPOCH - YEAR,
        description="bio", location="", url="",
        default_profile_image=False, verified=False,
        followers_count=500, friends_count=200, statuses_count=800,
        last_status_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return UserObject(**defaults)


class TestRealScore:
    def test_ideal_account_scores_five(self):
        score = real_score(make_user(), NOW)
        assert score.total == TA_MAX_POINTS == 5.0
        assert score.quality == 1.0

    def test_egg_scores_zero(self):
        egg = make_user(statuses_count=0, last_status_at=None,
                        followers_count=1, friends_count=900)
        score = real_score(egg, NOW)
        assert score.total == 0.0

    def test_three_criteria_compose(self):
        user = make_user(statuses_count=20,  # 0.75
                         last_status_at=PAPER_EPOCH - 100 * DAY,  # 0.75
                         followers_count=100, friends_count=300)  # 1.0
        score = real_score(user, NOW)
        assert score == RealScore(0.75, 0.75, 1.0)

    def test_dormant_account_loses_recency_points(self):
        dormant = make_user(last_status_at=PAPER_EPOCH - YEAR)
        assert real_score(dormant, NOW).recency_points == 0.0


class TestAudit:
    @pytest.fixture
    def tool(self, small_world):
        return Twitteraudit(small_world, SimClock(PAPER_EPOCH), seed=4)

    def test_samples_one_page_of_5000(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.sample_size == TA_SAMPLE
        assert tool.client.call_log.count("followers/ids") == 1

    def test_does_not_report_inactive(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.inactive_pct is None
        assert report.fake_pct + report.genuine_pct == \
            pytest.approx(100.0, abs=0.2)

    def test_fake_bundles_dormant_accounts(self, tool):
        """Without an inactive class, dormant accounts score low and
        land in 'fake' — TA's fake % exceeds the true 10% fake share."""
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.fake_pct > 15.0

    def test_details_expose_charts(self, tool):
        report = tool.audit(AuditRequest(target="smalltown"))
        histogram = report.details["real_points_histogram"]
        assert set(histogram) == {0, 1, 2, 3, 4, 5}
        assert sum(histogram.values()) == report.sample_size
        assert 0.0 <= report.details["mean_quality_score"] <= 1.0

    def test_profile_only_no_timeline_calls(self, tool):
        tool.audit(AuditRequest(target="smalltown"))
        assert tool.client.call_log.count("statuses/user_timeline") == 0
