"""Unit tests for the StatusPeople Fakers re-implementation."""

import pytest

from repro.audit import AuditRequest
from repro.analytics import (
    DEEP_DIVE_CONFIG,
    DEFAULT_CONFIG,
    LAUNCH_CONFIG,
    FakersConfig,
    SP_INACTIVITY_HORIZON,
    StatusPeopleFakers,
    is_inactive,
    is_spam,
    spam_score,
)
from repro.api import UserObject
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, SimClock, YEAR

NOW = PAPER_EPOCH


def make_user(**overrides):
    defaults = dict(
        user_id=1, screen_name="u", name="User",
        created_at=PAPER_EPOCH - YEAR,
        description="bio", location="Rome", url="",
        default_profile_image=False, verified=False,
        followers_count=200, friends_count=180, statuses_count=500,
        last_status_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return UserObject(**defaults)


class TestConfigs:
    def test_historical_configurations(self):
        assert (LAUNCH_CONFIG.head, LAUNCH_CONFIG.sample) == (100_000, 1000)
        assert (DEFAULT_CONFIG.head, DEFAULT_CONFIG.sample) == (35_000, 700)
        assert (DEEP_DIVE_CONFIG.head, DEEP_DIVE_CONFIG.sample) == \
            (1_250_000, 33_000)

    def test_sample_must_fit_head(self):
        with pytest.raises(ConfigurationError):
            FakersConfig("bad", head=100, sample=200)


class TestSpamCriteria:
    def test_classic_fake_flagged(self):
        fake = make_user(followers_count=3, friends_count=800,
                         statuses_count=2)
        assert is_spam(fake)
        assert spam_score(fake) == 5.0

    def test_engaged_human_passes(self):
        assert not is_spam(make_user())

    def test_ratio_is_the_heaviest_signal(self):
        """The founder: the follower/friend relationship matters most."""
        ratio_only = make_user(followers_count=30, friends_count=700)
        assert spam_score(ratio_only) >= 2.0

    def test_inactivity_thirty_day_horizon(self):
        assert SP_INACTIVITY_HORIZON == 30 * DAY
        assert is_inactive(make_user(
            last_status_at=PAPER_EPOCH - 31 * DAY), NOW)
        assert not is_inactive(make_user(
            last_status_at=PAPER_EPOCH - 29 * DAY), NOW)
        assert is_inactive(make_user(
            statuses_count=0, last_status_at=None), NOW)


class TestAudit:
    def test_sample_capped_at_config(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=2)
        report = tool.audit(AuditRequest(target="smalltown"))
        assert report.sample_size == DEFAULT_CONFIG.sample
        assert report.details["config"] == "post-api-change"

    def test_percentages_sum_to_100(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=2)
        report = tool.audit(AuditRequest(target="smalltown"))
        total = report.fake_pct + report.genuine_pct + report.inactive_pct
        assert total == pytest.approx(100.0, abs=0.2)

    def test_profile_only_no_timeline_calls(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=2)
        tool.audit(AuditRequest(target="smalltown"))
        assert tool.client.call_log.count("statuses/user_timeline") == 0

    def test_stricter_activity_notion_than_socialbakers(self, small_world):
        """SP's 30-day horizon yields more inactives than SB's flow on
        the same world (cf. Table III, average tier)."""
        from repro.analytics import SocialbakersFakeFollowerCheck
        clock = SimClock(PAPER_EPOCH)
        sp = StatusPeopleFakers(small_world, clock, seed=2)
        sb = SocialbakersFakeFollowerCheck(small_world, clock, seed=2)
        sp_report = sp.audit(AuditRequest(target="smalltown"))
        sb_report = sb.audit(AuditRequest(target="smalltown"))
        assert sp_report.inactive_pct > sb_report.inactive_pct
