"""Unit tests for JSON serialization of worlds, reports and datasets."""

import pytest

from repro.audit import AuditRequest
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.fc import build_gold_standard
from repro.serde import (
    audit_report_from_dict,
    audit_report_to_dict,
    gold_standard_from_dict,
    gold_standard_to_dict,
    load_json,
    save_json,
    target_spec_from_dict,
    target_spec_to_dict,
    world_from_dict,
    world_to_dict,
)
from repro.twitter import add_simple_target, build_world, make_target_spec


class TestAuditReportRoundTrip:
    @pytest.fixture(scope="class")
    def report(self, small_world, detector):
        from repro.fc import FakeClassifierEngine
        engine = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector, sample_size=300)
        return engine.audit(AuditRequest(target="smalltown"))

    def test_round_trip_preserves_fields(self, report):
        rebuilt = audit_report_from_dict(audit_report_to_dict(report))
        assert rebuilt.tool == report.tool
        assert rebuilt.target == report.target
        assert rebuilt.fake_pct == report.fake_pct
        assert rebuilt.inactive_pct == report.inactive_pct
        assert rebuilt.response_seconds == report.response_seconds
        assert rebuilt.cached == report.cached

    def test_details_survive_with_string_keys(self, report):
        payload = audit_report_to_dict(report)
        rebuilt = audit_report_from_dict(payload)
        assert rebuilt.details["population"] == 12_000

    def test_wrong_kind_rejected(self, report):
        payload = audit_report_to_dict(report)
        payload["kind"] = "world"
        with pytest.raises(ConfigurationError):
            audit_report_from_dict(payload)

    def test_wrong_version_rejected(self, report):
        payload = audit_report_to_dict(report)
        payload["format_version"] = 999
        with pytest.raises(ConfigurationError):
            audit_report_from_dict(payload)

    def test_json_round_trip_through_disk(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_json(audit_report_to_dict(report), path)
        rebuilt = audit_report_from_dict(load_json(path))
        assert rebuilt.fake_pct == report.fake_pct


class TestTargetSpecRoundTrip:
    def test_round_trip(self):
        spec = make_target_spec(
            "roundtrip", 20_000, 0.3, 0.2, 0.5,
            fake_burst_fraction=0.5, tilt=0.4, daily_new_followers=33.0)
        rebuilt = target_spec_from_dict(target_spec_to_dict(spec))
        assert rebuilt == spec

    def test_property_round_trip_for_arbitrary_specs(self):
        from hypothesis import given, settings, strategies as st

        @given(
            followers=st.integers(min_value=1, max_value=100_000),
            inactive=st.floats(min_value=0.0, max_value=1.0),
            fake=st.floats(min_value=0.0, max_value=1.0),
            genuine=st.floats(min_value=0.05, max_value=1.0),
            tilt=st.floats(min_value=0.0, max_value=0.9),
            burst=st.floats(min_value=0.0, max_value=1.0),
            position=st.floats(min_value=0.0, max_value=1.0),
            trickle=st.floats(min_value=0.0, max_value=500.0),
        )
        @settings(max_examples=40, deadline=None)
        def check(followers, inactive, fake, genuine, tilt, burst,
                  position, trickle):
            spec = make_target_spec(
                "arbitrary", followers, inactive, fake, genuine,
                tilt=tilt, fake_burst_fraction=burst,
                fake_burst_position=position,
                daily_new_followers=trickle)
            rebuilt = target_spec_from_dict(target_spec_to_dict(spec))
            assert rebuilt == spec

        check()


class TestWorldRoundTrip:
    def test_world_regenerates_identically(self):
        world = build_world(seed=123)
        add_simple_target(world, "alpha", 9000, 0.4, 0.1, 0.5,
                          daily_new_followers=20)
        add_simple_target(world, "beta", 4000, 0.1, 0.3, 0.6,
                          fake_burst_fraction=0.8)
        rebuilt = world_from_dict(world_to_dict(world))

        assert rebuilt.seed == world.seed
        assert rebuilt.ref_time == world.ref_time
        for handle in ("alpha", "beta"):
            original = world.population(handle)
            regenerated = rebuilt.population(handle)
            assert regenerated.size_at(PAPER_EPOCH) == \
                original.size_at(PAPER_EPOCH)
            for position in (0, 17, 3999):
                assert regenerated.account_at(position, PAPER_EPOCH) == \
                    original.account_at(position, PAPER_EPOCH)

    def test_world_json_file_round_trip(self, tmp_path):
        world = build_world(seed=5)
        add_simple_target(world, "gamma", 1000, 0.2, 0.2, 0.6)
        path = tmp_path / "world.json"
        save_json(world_to_dict(world), path)
        rebuilt = world_from_dict(load_json(path))
        assert rebuilt.population("gamma").size_at(PAPER_EPOCH) == 1000


class TestGoldStandardRoundTrip:
    def test_round_trip_preserves_everything(self):
        gold = build_gold_standard(n_fake=15, n_genuine=15,
                                   n_inactive=10, seed=8)
        rebuilt = gold_standard_from_dict(gold_standard_to_dict(gold))
        assert len(rebuilt) == len(gold)
        assert rebuilt.now == gold.now
        assert rebuilt.three_way_labels() == gold.three_way_labels()
        assert rebuilt.users() == gold.users()
        assert rebuilt.timelines() == gold.timelines()

    def test_rebuilt_gold_trains_identical_detector(self):
        from repro.fc import PROFILE_FEATURE_SET
        gold = build_gold_standard(n_fake=40, n_genuine=40, seed=9)
        rebuilt = gold_standard_from_dict(gold_standard_to_dict(gold))
        import numpy as np
        assert np.array_equal(
            gold.design_matrix(PROFILE_FEATURE_SET),
            rebuilt.design_matrix(PROFILE_FEATURE_SET))
