"""Integration: every engine runs unchanged on the materialised graph.

The :class:`SocialGraph` and the lazy :class:`SyntheticWorld` implement
the same ``World`` interface; these tests audit a graph-backed follower
base with all four engines end to end, proving backend interchange.
"""

import pytest

from repro.audit import AuditRequest
from repro.analytics import (
    SocialbakersFakeFollowerCheck,
    StatusPeopleFakers,
    Twitteraudit,
)
from repro.core import PAPER_EPOCH, SimClock, YEAR
from repro.fc import FakeClassifierEngine
from repro.twitter import Account, Label, SocialGraph, populate_graph


@pytest.fixture(scope="module")
def graph_world():
    """A materialised graph: 1 target, 1200 followers, known labels.

    Arrival order is the list order: first 480 inactive (the long-gone
    early audience), then 120 fakes, then 600 genuine (the fresh crowd)
    — a recency gradient in miniature.
    """
    graph = SocialGraph(seed=21)
    target = Account(
        user_id=50_000, screen_name="graphstar",
        created_at=PAPER_EPOCH - 4 * YEAR,
        statuses_count=900, last_tweet_at=PAPER_EPOCH - 3600)
    labels = ([Label.INACTIVE] * 480 + [Label.FAKE] * 120
              + [Label.GENUINE] * 600)
    populate_graph(graph, target, labels, seed=22)
    return graph


class TestEnginesOnGraphBackend:
    def test_fc_engine_recovers_composition(self, graph_world, detector):
        engine = FakeClassifierEngine(
            graph_world, SimClock(PAPER_EPOCH), detector, seed=1)
        report = engine.audit(AuditRequest(target="graphstar"))
        assert report.sample_size == 1200  # census: base < 9604
        assert report.inactive_pct == pytest.approx(40.0, abs=6.0)
        assert report.fake_pct == pytest.approx(10.0, abs=5.0)

    def test_twitteraudit_runs(self, graph_world):
        tool = Twitteraudit(graph_world, SimClock(PAPER_EPOCH), seed=1)
        report = tool.audit(AuditRequest(target="graphstar"))
        assert report.sample_size == 1200
        assert 0.0 <= report.fake_pct <= 100.0

    def test_statuspeople_runs(self, graph_world):
        tool = StatusPeopleFakers(graph_world, SimClock(PAPER_EPOCH), seed=1)
        report = tool.audit(AuditRequest(target="graphstar"))
        assert report.sample_size == 700  # its documented cap applies
        assert report.inactive_pct is not None

    def test_socialbakers_runs_with_timelines(self, graph_world):
        tool = SocialbakersFakeFollowerCheck(
            graph_world, SimClock(PAPER_EPOCH), seed=1)
        report = tool.audit(AuditRequest(target="graphstar"))
        assert report.sample_size == 1200
        assert tool.client.call_log.count("statuses/user_timeline") == 1200

    def test_small_bases_have_no_head_bias(self, graph_world):
        """With 1200 followers the 35K head frame covers the whole
        base, so StatusPeople's sample is effectively unbiased: its
        fake+inactive share covers the true non-genuine 50% (SP checks
        its spam criteria first, so many dormant eggs land in 'fake'
        rather than 'inactive')."""
        tool = StatusPeopleFakers(graph_world, SimClock(PAPER_EPOCH), seed=1)
        report = tool.audit(AuditRequest(target="graphstar"))
        assert report.inactive_pct + report.fake_pct >= 45.0

    def test_growth_monitor_on_graph(self, graph_world):
        from repro.growth import GrowthMonitor
        monitor = GrowthMonitor(graph_world, SimClock(PAPER_EPOCH))
        report = monitor.watch("graphstar", days=5)
        assert not report.suspicious  # static graph: zero growth
