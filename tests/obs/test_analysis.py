"""Analysis tests: phase attribution, lane timelines, critical path.

Two hand-built traces cover the two shapes :func:`attribute_all`
understands (blocking ``audit`` spans and scheduled ``sched.slot.step``
groups); an end-to-end scheduler run checks the acceptance invariant —
every engine's phases sum to each audit's total simulated duration.
"""

import pathlib

import pytest

from repro.audit import AuditRequest
from repro.core import PAPER_EPOCH, SimClock
from repro.core.errors import ConfigurationError
from repro.obs import (
    PHASES,
    Tracer,
    attribute_all,
    critical_path,
    lane_timeline,
    observed,
    phase_totals,
    render_critical_path,
    render_lane_timeline,
    render_phase_attribution,
)
from repro.sched import BatchAuditScheduler
from repro.twitter import add_simple_target, build_world

GOLDEN = pathlib.Path(__file__).parent / "golden"

ENGINE_ORDER = ("fc", "twitteraudit", "statuspeople", "socialbakers")


def build_audit_trace() -> Tracer:
    """Blocking-mode shape: audit spans with nested phase children."""
    clock = SimClock(PAPER_EPOCH)
    tracer = Tracer(clock)
    with tracer.span("audit", clock, tool="fc", target="alpha",
                     cached=False):
        with tracer.span("api.request", clock):
            clock.advance(2.0)
        with tracer.span("crawl.followers", clock):
            clock.advance(5.0)
        with tracer.span("audit.classify", clock, tool="fc"):
            clock.advance(1.5)
        clock.advance(0.5)  # report assembly: nobody's child
    with tracer.span("audit", clock, tool="twitteraudit", target="alpha",
                     cached=True):
        with tracer.span("audit.cache_serve", clock):
            clock.advance(3.0)
    return tracer


def build_sched_trace() -> Tracer:
    """Scheduled shape: step groups, lane summaries, a coalesce marker.

    The fc lane runs @alpha in two *interleaved* steps (10 s + 15 s
    with a 5 s wait between them) and @charlie in one; the twitteraudit
    lane serves @bravo from cache.  All spans are recorded post hoc,
    exactly as the scheduler does.
    """
    tracer = Tracer(SimClock(PAPER_EPOCH))
    t0 = PAPER_EPOCH
    step = tracer.record("sched.slot.step", t0, t0 + 10.0,
                         lane="fc", slot=0, seq=0, target="alpha")
    tracer.record("crawl.followers", t0, t0 + 8.0,
                  parent_id=step.span_id, target="alpha")
    step = tracer.record("sched.slot.step", t0 + 15.0, t0 + 30.0,
                         lane="fc", slot=0, seq=0, target="alpha")
    tracer.record("audit.classify", t0 + 15.0, t0 + 27.0,
                  parent_id=step.span_id, tool="fc")
    step = tracer.record("sched.slot.step", t0 + 40.0, t0 + 60.0,
                         lane="fc", slot=0, seq=2, target="charlie")
    tracer.record("crawl.followers", t0 + 40.0, t0 + 58.0,
                  parent_id=step.span_id, target="charlie")
    step = tracer.record("sched.slot.step", t0, t0 + 20.0,
                         lane="twitteraudit", slot=0, seq=1, target="bravo")
    tracer.record("audit.cache_serve", t0, t0 + 20.0,
                  parent_id=step.span_id)
    tracer.record("sched.lane", t0, t0 + 60.0, lane="fc",
                  slots=1, items=2, errors=0, busy_seconds=45.0)
    tracer.record("sched.lane", t0, t0 + 20.0, lane="twitteraudit",
                  slots=1, items=1, errors=0, busy_seconds=20.0)
    tracer.record("sched.coalesce", t0 + 5.0, t0 + 5.0,
                  lane="twitteraudit", target="bravo", seq=1)
    return tracer


class TestPhaseAttribution:
    def test_blocking_audit_decomposes_by_phase(self):
        first, second = attribute_all(build_audit_trace())
        assert first.tool == "fc"
        assert first.source == "audit"
        assert not first.cached
        assert first.total == pytest.approx(9.0)
        assert first.phases["resolve"] == pytest.approx(2.0)
        assert first.phases["frame"] == pytest.approx(5.0)
        assert first.phases["classify"] == pytest.approx(1.5)
        assert first.phases["other"] == pytest.approx(0.5)
        assert second.cached
        assert second.phases["cache_serve"] == pytest.approx(3.0)
        assert second.phases["other"] == pytest.approx(0.0)

    def test_sched_groups_merge_interleaved_steps(self):
        by_key = {(a.tool, a.target): a
                  for a in attribute_all(build_sched_trace())}
        alpha = by_key[("fc", "alpha")]
        assert alpha.source == "sched"
        # Two steps of 10 s and 15 s; the 5 s wait between them is not
        # audit time, so it never enters the total.
        assert alpha.total == pytest.approx(25.0)
        assert alpha.phases["frame"] == pytest.approx(8.0)
        assert alpha.phases["classify"] == pytest.approx(12.0)
        assert alpha.phases["other"] == pytest.approx(5.0)
        bravo = by_key[("twitteraudit", "bravo")]
        assert bravo.cached
        assert bravo.phases["cache_serve"] == pytest.approx(20.0)

    def test_phases_always_sum_to_total(self):
        for tracer in (build_audit_trace(), build_sched_trace()):
            for attribution in attribute_all(tracer):
                assert sum(attribution.phases.values()) == pytest.approx(
                    attribution.total, abs=1e-9)
                assert set(attribution.phases) == set(PHASES)

    def test_serial_mode_steps_are_not_double_counted(self):
        # A step group wrapping a blocking audit (the scheduler's
        # serial baseline) must yield exactly one attribution.
        tracer = Tracer(SimClock(PAPER_EPOCH))
        step = tracer.record("sched.slot.step", PAPER_EPOCH,
                             PAPER_EPOCH + 5.0,
                             lane="fc", slot=0, seq=0, target="alpha")
        tracer.record("audit", PAPER_EPOCH, PAPER_EPOCH + 5.0,
                      parent_id=step.span_id, tool="fc", target="alpha")
        attributions = attribute_all(tracer)
        assert len(attributions) == 1
        assert attributions[0].source == "audit"

    def test_accepts_tracer_obs_or_span_sequence(self):
        tracer = build_audit_trace()

        class FakeObs:
            pass

        obs = FakeObs()
        obs.tracer = tracer
        assert attribute_all(tracer) == attribute_all(obs)
        assert attribute_all(tracer) == attribute_all(tracer.spans())

    def test_phase_totals_iterate_in_sorted_tool_order(self):
        totals = phase_totals(attribute_all(build_sched_trace()))
        assert list(totals) == ["fc", "twitteraudit"]
        assert totals["fc"]["frame"] == pytest.approx(26.0)

    def test_render_lists_every_engine(self):
        rendered = render_phase_attribution(build_sched_trace())
        assert rendered.startswith("phase attribution (simulated seconds)")
        assert "fc" in rendered and "twitteraudit" in rendered
        for phase in PHASES:
            assert phase in rendered

    def test_render_accepts_prebuilt_attributions(self):
        attributions = attribute_all(build_audit_trace())
        assert render_phase_attribution(attributions) == \
            render_phase_attribution(build_audit_trace())

    def test_render_empty_trace(self):
        rendered = render_phase_attribution(Tracer(SimClock(PAPER_EPOCH)))
        assert "(no audits recorded)" in rendered


class TestLaneTimeline:
    def test_document_shape(self):
        timeline = lane_timeline(build_sched_trace())
        assert timeline["epoch"] == PAPER_EPOCH
        assert timeline["makespan_seconds"] == pytest.approx(60.0)
        assert [lane["lane"] for lane in timeline["lanes"]] == \
            ["fc", "twitteraudit"]
        fc_slot = timeline["lanes"][0]["slots"][0]
        # The two interleaved @alpha steps merge into one segment
        # spanning first start to last end.
        assert [seg["seq"] for seg in fc_slot["segments"]] == [0, 2]
        assert fc_slot["segments"][0]["steps"] == 2
        assert fc_slot["segments"][0]["end"] == PAPER_EPOCH + 30.0
        assert fc_slot["busy_seconds"] == pytest.approx(50.0)
        assert len(timeline["coalesced"]) == 1
        assert timeline["coalesced"][0]["target"] == "bravo"

    def test_empty_trace_yields_empty_document(self):
        timeline = lane_timeline(Tracer(SimClock(PAPER_EPOCH)))
        assert timeline["lanes"] == []
        assert timeline["makespan_seconds"] == 0.0
        rendered = render_lane_timeline(timeline)
        assert "(no scheduler lanes recorded)" in rendered

    def test_render_matches_golden(self):
        rendered = render_lane_timeline(build_sched_trace(), width=60)
        assert rendered + "\n" == \
            (GOLDEN / "lane_timeline.txt").read_text(encoding="utf-8")

    def test_render_is_deterministic(self):
        assert render_lane_timeline(build_sched_trace()) == \
            render_lane_timeline(build_sched_trace())

    def test_render_rejects_unusable_width(self):
        with pytest.raises(ConfigurationError):
            render_lane_timeline(build_sched_trace(), width=5)


class TestCriticalPath:
    def test_names_the_slot_that_finishes_last(self):
        path = critical_path(build_sched_trace())
        assert path["lane"] == "fc"
        assert path["slot"] == 0
        assert path["makespan_seconds"] == pytest.approx(60.0)
        assert path["busy_seconds"] == pytest.approx(50.0)
        assert path["idle_seconds"] == pytest.approx(10.0)
        assert [seg["seq"] for seg in path["segments"]] == [0, 2]

    def test_render_lists_segments(self):
        rendered = render_critical_path(build_sched_trace())
        assert rendered.startswith("critical path: lane fc slot 0")
        assert "@alpha" in rendered and "@charlie" in rendered
        assert "(2 steps)" in rendered

    def test_empty_trace(self):
        path = critical_path(Tracer(SimClock(PAPER_EPOCH)))
        assert path["lane"] is None
        assert render_critical_path(path) == \
            "critical path: (no scheduler lanes recorded)"


def small_world():
    world = build_world(seed=23, ref_time=PAPER_EPOCH)
    add_simple_target(world, "alpha", 9_000, 0.35, 0.15, 0.50)
    add_simple_target(world, "bravo", 6_000, 0.25, 0.30, 0.45)
    add_simple_target(world, "charlie", 4_000, 0.50, 0.10, 0.40)
    return world


class TestSchedulerIntegration:
    """The acceptance invariant, on a real batch run's trace."""

    @pytest.fixture(scope="class")
    def observed_batch(self):
        with observed() as obs:
            world = small_world()
            clock = SimClock(world.ref_time)
            scheduler = BatchAuditScheduler(world, clock, seed=7,
                                            lane_slots=2)
            scheduler.submit_batch(
                [AuditRequest(target=target)
                 for target in ("alpha", "bravo", "charlie")])
            batch = scheduler.run()
        return obs, batch

    def test_every_engine_attributed(self, observed_batch):
        obs, batch = observed_batch
        attributions = attribute_all(obs.tracer)
        assert {a.tool for a in attributions} == set(ENGINE_ORDER)
        assert len(attributions) == len(batch.items)

    def test_phases_sum_to_each_audits_total(self, observed_batch):
        obs, batch = observed_batch
        for attribution in attribute_all(obs.tracer):
            assert sum(attribution.phases.values()) == pytest.approx(
                attribution.total, abs=1e-6), attribution

    def test_totals_match_the_schedulers_own_timings(self, observed_batch):
        obs, batch = observed_batch
        items = {(item.lane, item.request.target): item
                 for item in batch.items}
        for attribution in attribute_all(obs.tracer):
            item = items[(attribution.tool, attribution.target)]
            assert attribution.total == pytest.approx(
                item.finished_at - item.started_at, abs=1e-6)

    def test_timeline_covers_all_lanes_and_critical_path_is_makespan(
            self, observed_batch):
        obs, batch = observed_batch
        timeline = lane_timeline(obs.tracer)
        assert sorted(lane["lane"] for lane in timeline["lanes"]) == \
            sorted(ENGINE_ORDER)
        assert timeline["makespan_seconds"] == pytest.approx(
            batch.makespan_seconds, abs=1e-6)
        path = critical_path(obs.tracer)
        assert path["makespan_seconds"] == pytest.approx(
            batch.makespan_seconds, abs=1e-6)
        assert path["lane"] in ENGINE_ORDER
