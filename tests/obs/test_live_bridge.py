"""Unit tests for the detector bridge (follower streams -> burst alerts)."""

import pytest

from repro.core import DAY, ConfigurationError
from repro.growth import BurstDetector
from repro.obs.live import AlertLog, DetectorBridge, LiveTelemetry


def _feed_organic(bridge, handle, days, per_day=100, start_count=1000):
    """Feed ``days`` daily readings of steady organic growth."""
    count = start_count
    for day in range(days):
        count += per_day + (day % 3)  # small deterministic jitter
        bridge.observe(handle, day * DAY + 60.0, count)
    return count


class TestDetectorBridge:
    def test_no_alert_on_organic_growth(self):
        log = AlertLog()
        bridge = DetectorBridge(log)
        _feed_organic(bridge, "calm", 20)
        assert log.events == ()

    def test_burst_fires_and_resolves(self):
        log = AlertLog()
        bridge = DetectorBridge(log)
        count = _feed_organic(bridge, "buyer", 12)
        # Day 12: a purchased block lands.
        fired = bridge.observe("buyer", 12 * DAY + 60.0, count + 5000)
        assert fired
        assert log.active() == ("burst:buyer",)
        details = dict(log.events[0].details)
        assert details["arrivals"] == 5000  # delta from the prior reading
        assert details["excess"] > 4000
        # Next day back to baseline: the alert resolves.
        bridge.observe("buyer", 13 * DAY + 60.0, count + 5000 + 100)
        assert log.active() == ()
        assert log.counts() == (1, 1)

    def test_same_burst_day_is_reported_once(self):
        log = AlertLog()
        bridge = DetectorBridge(log)
        count = _feed_organic(bridge, "buyer", 12)
        bridge.observe("buyer", 12 * DAY + 60.0, count + 5000)
        bridge.observe("buyer", 13 * DAY + 60.0, count + 5100)
        # The burst day stays in the series but must not re-fire.
        fired = bridge.observe("buyer", 14 * DAY + 60.0, count + 5200)
        assert not fired
        assert log.counts() == (1, 1)

    def test_threshold_configuration_flows_through(self):
        # A modest spike: ~8x the organic day.  The default detector
        # flags it; a stricter min_excess ignores it.
        lenient_log, strict_log = AlertLog(), AlertLog()
        lenient = DetectorBridge(lenient_log, BurstDetector(min_excess=50))
        strict = DetectorBridge(strict_log,
                                BurstDetector(min_excess=2000))
        for bridge in (lenient, strict):
            count = _feed_organic(bridge, "t", 12)
            bridge.observe("t", 12 * DAY + 60.0, count + 800)
        assert lenient_log.counts() == (1, 0)
        assert strict_log.counts() == (0, 0)

    def test_detection_waits_for_min_history(self):
        log = AlertLog()
        bridge = DetectorBridge(log, min_history=10)
        count = 1000
        for day in range(9):
            count += 100 if day < 8 else 9000
            assert not bridge.observe("t", day * DAY, count)
        assert log.events == ()

    def test_history_and_reported_sets_stay_bounded(self):
        bridge = DetectorBridge(AlertLog(), min_history=5, max_history=16)
        _feed_organic(bridge, "t", 100)
        assert len(bridge._observations["t"]) == 16
        assert len(bridge._reported["t"]) <= 16

    def test_follower_streams_mirror_readings(self):
        bridge = DetectorBridge(AlertLog(), origin=0.0)
        bridge.observe("t", 60.0, 1000)
        stream = bridge.stream("t")
        assert stream.name == "followers:t"
        assert stream.latest().last == 1000.0
        assert set(bridge.streams()) == {"t"}

    def test_validates_history_bounds(self):
        with pytest.raises(ConfigurationError):
            DetectorBridge(AlertLog(), min_history=4)
        with pytest.raises(ConfigurationError):
            DetectorBridge(AlertLog(), min_history=8, max_history=4)


class TestTelemetryBridgeHook:
    def test_observe_followers_routes_through_the_bridge(self):
        live = LiveTelemetry()
        assert not live.observe_followers("t", 60.0, 1000)  # no bridge yet
        live.attach_bridge(DetectorBridge(live.alerts))
        count = 1000
        for day in range(12):
            count += 100
            live.observe_followers("t", day * DAY + 60.0, count)
        assert live.observe_followers("t", 12 * DAY + 60.0, count + 5000)
        assert live.alerts.active() == ("burst:t",)
