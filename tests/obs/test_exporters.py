"""Exporter tests: JSONL / Prometheus golden files, console summary.

The golden files under ``tests/obs/golden/`` pin the exact bytes the
exporters produce for a small hand-built scenario; byte-stability is
what makes trace/metrics dumps usable as regression artifacts.
"""

import json
import pathlib

import pytest

from repro.api import ApiCall, CallLog
from repro.core import PAPER_EPOCH, SimClock
from repro.obs import (
    Observability,
    console_summary,
    iter_trace_jsonl,
    prometheus_text,
    stats_line,
    trace_to_jsonl,
    write_metrics_prom,
    write_trace_jsonl,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def build_scenario() -> Observability:
    """A tiny deterministic run: one audit, two API calls, a call log."""
    obs = Observability(SimClock(PAPER_EPOCH))
    clock = SimClock(PAPER_EPOCH)
    tracer = obs.tracer
    registry = obs.registry

    with tracer.span("audit", clock, tool="demo", target="alice") as root:
        with tracer.span("api.request", clock,
                         resource="users/lookup") as request:
            clock.advance(1.9)
            request.set_attribute("waited", 0.0)
        with tracer.span("api.request", clock,
                         resource="followers/ids") as request:
            clock.advance(60.0)
            request.set_attribute("waited", 58.1)
        root.set_attribute("fake_pct", 12.5)

    registry.counter("api_requests_total",
                     help="requests issued, by API resource",
                     resource="users/lookup").inc()
    registry.counter("api_requests_total",
                     help="requests issued, by API resource",
                     resource="followers/ids").inc()
    registry.gauge("ratelimit_tokens_remaining",
                   resource="users/lookup").set(179.0)
    latency = registry.histogram(
        "api_request_latency_seconds", buckets=(1.0, 5.0, 60.0),
        help="request wall time", resource="users/lookup")
    latency.observe(1.9)
    latency.observe(0.5)

    log = CallLog()
    log.record(ApiCall(resource="users/lookup", issued_at=PAPER_EPOCH,
                       completed_at=PAPER_EPOCH + 1.9, waited=0.0, items=100))
    log.record(ApiCall(resource="followers/ids",
                       issued_at=PAPER_EPOCH + 1.9,
                       completed_at=PAPER_EPOCH + 61.9, waited=58.1, items=0))
    obs.register_call_log(log)
    return obs


class TestGoldenFiles:
    def test_jsonl_trace_matches_golden(self):
        rendered = trace_to_jsonl(build_scenario().tracer)
        assert rendered == (GOLDEN / "trace.jsonl").read_text(encoding="utf-8")

    def test_prometheus_matches_golden(self):
        rendered = prometheus_text(build_scenario())
        assert rendered == (GOLDEN / "metrics.prom").read_text(
            encoding="utf-8")

    def test_exports_are_byte_stable_across_runs(self):
        assert trace_to_jsonl(build_scenario().tracer) == \
            trace_to_jsonl(build_scenario().tracer)
        assert prometheus_text(build_scenario()) == \
            prometheus_text(build_scenario())


class TestJsonlShape:
    def test_one_valid_json_object_per_span(self):
        obs = build_scenario()
        lines = trace_to_jsonl(obs.tracer).splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        root, first, second = parsed
        assert root["name"] == "audit"
        assert root["parent_id"] is None
        assert first["parent_id"] == root["span_id"]
        assert second["parent_id"] == root["span_id"]
        assert second["duration"] == 60.0
        assert root["attributes"]["fake_pct"] == 12.5

    def test_empty_tracer_renders_empty_string(self):
        obs = Observability()
        assert trace_to_jsonl(obs.tracer) == ""


class TestPrometheusShape:
    def test_histogram_exposes_cumulative_buckets(self):
        text = prometheus_text(build_scenario())
        assert ('api_request_latency_seconds_bucket'
                '{resource="users/lookup",le="1"} 1') in text
        assert ('api_request_latency_seconds_bucket'
                '{resource="users/lookup",le="+Inf"} 2') in text
        assert ('api_request_latency_seconds_count'
                '{resource="users/lookup"} 2') in text

    def test_calllog_summary_series_present(self):
        text = prometheus_text(build_scenario())
        assert 'api_calllog_calls{resource="followers/ids"} 1' in text
        assert 'api_calllog_waited_seconds{resource="followers/ids"} 58.1' \
            in text
        assert 'api_calllog_items{resource="users/lookup"} 100' in text


class TestWriters:
    def test_write_helpers_create_files(self, tmp_path):
        obs = build_scenario()
        trace_path = write_trace_jsonl(obs.tracer, tmp_path / "t.jsonl")
        prom_path = write_metrics_prom(obs, tmp_path / "m.prom")
        assert trace_path.stat().st_size > 0
        assert prom_path.stat().st_size > 0


class TestStreaming:
    def test_iter_yields_one_terminated_line_per_span(self):
        obs = build_scenario()
        lines = list(iter_trace_jsonl(obs.tracer))
        assert len(lines) == 3
        assert all(line.endswith("\n") for line in lines)
        assert "".join(lines) == trace_to_jsonl(obs.tracer)

    def test_write_streams_the_same_bytes(self, tmp_path):
        obs = build_scenario()
        path = write_trace_jsonl(obs.tracer, tmp_path / "t.jsonl")
        assert path.read_text(encoding="utf-8") == trace_to_jsonl(obs.tracer)


class TestStatsLineExtensions:
    def test_sched_segment_appears_with_the_family(self):
        obs = build_scenario()
        assert "sched audits" not in stats_line(obs)
        obs.registry.counter("sched_requests_total", lane="fc").inc(12.0)
        obs.registry.counter("sched_coalesced_hits_total").inc(2.0)
        assert "12 sched audits (2 coalesced)" in stats_line(obs)

    def test_fault_segment_appears_with_either_family(self):
        obs = build_scenario()
        assert "faults injected" not in stats_line(obs)
        obs.registry.counter("api_retries_total", resource="x").inc(3.0)
        line = stats_line(obs)
        assert "0 faults injected, 3 retries (0s backoff)" in line


class TestConsoleSummary:
    def test_mentions_spans_and_resources(self):
        obs = build_scenario()
        text = console_summary(obs)
        assert "audit" in text
        assert "users/lookup" in text
        assert text.endswith(stats_line(obs))

    def test_stats_line_aggregates(self):
        line = stats_line(build_scenario())
        assert line.startswith("repro stats: 3 spans (2 names)")
        assert "2 API calls" in line
        assert "100 items" in line
        assert "58s rate-limit wait" in line


class _StubCache:
    def __init__(self, name, hits, misses, evictions, size):
        from repro.obs import CacheInfo
        self._info = CacheInfo(name, hits, misses, evictions, size)

    def cache_info(self):
        return self._info


class TestCacheSegment:
    def test_stats_line_gains_the_segment_only_with_caches(self):
        obs = build_scenario()
        assert "caches" not in stats_line(obs)
        obs.register_cache(_StubCache("audit", 7, 3, 1, 4))
        assert "1 caches (7/10 hits, 1 evicted)" in stats_line(obs)

    def test_cache_info_merges_same_named_caches(self):
        obs = build_scenario()
        obs.register_cache(_StubCache("audit", 1, 1, 0, 2))
        obs.register_cache(_StubCache("audit", 2, 0, 1, 3))
        obs.register_cache(_StubCache("acquisition", 5, 5, 0, 9))
        infos = obs.cache_info()
        assert [info.name for info in infos] == ["acquisition", "audit"]
        merged = infos[1]
        assert (merged.hits, merged.misses,
                merged.evictions, merged.size) == (3, 1, 1, 5)

    def test_console_summary_renders_the_cache_table(self):
        obs = build_scenario()
        assert "cache" not in console_summary(obs).split("\n")[0]
        obs.register_cache(_StubCache("audit", 7, 3, 1, 4))
        text = console_summary(obs)
        assert "cache" in text
        assert "evicted" in text
        assert text.endswith(stats_line(obs))

    def test_null_observability_reports_no_caches(self):
        from repro.obs import NULL_OBS
        NULL_OBS.register_cache(_StubCache("ignored", 1, 1, 0, 1))
        assert NULL_OBS.cache_info() == []
        assert NULL_OBS.caches == []


class TestLoadTraceJsonl:
    def test_round_trips_a_complete_dump(self, tmp_path):
        from repro.obs import load_trace_jsonl
        obs = build_scenario()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(obs.tracer, path)
        spans, truncated = load_trace_jsonl(path)
        assert not truncated
        assert [json.dumps(span, sort_keys=True) for span in spans] \
            == [json.dumps(json.loads(line), sort_keys=True)
                for line in iter_trace_jsonl(obs.tracer)]

    def test_drops_a_truncated_final_line(self, tmp_path):
        from repro.obs import load_trace_jsonl
        obs = build_scenario()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(obs.tracer, path)
        full = path.read_text(encoding="utf-8")
        cut = tmp_path / "cut.jsonl"
        cut.write_text(full[:-10], encoding="utf-8")  # mid-record copy
        spans, truncated = load_trace_jsonl(cut)
        assert truncated
        assert len(spans) == len(full.strip().splitlines()) - 1

    def test_truncation_tolerance_can_be_disabled(self, tmp_path):
        from repro.core import ConfigurationError
        from repro.obs import load_trace_jsonl
        path = tmp_path / "cut.jsonl"
        path.write_text('{"span_id": 1, "name"', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_trace_jsonl(path, tolerate_truncation=False)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        from repro.core import ConfigurationError
        from repro.obs import load_trace_jsonl
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"span_id": 1}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="malformed trace line"):
            load_trace_jsonl(path)

    def test_blank_lines_are_ignored(self, tmp_path):
        from repro.obs import load_trace_jsonl
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span_id": 1}\n\n{"span_id": 2}\n',
                        encoding="utf-8")
        spans, truncated = load_trace_jsonl(path)
        assert [span["span_id"] for span in spans] == [1, 2]
        assert not truncated
