"""End-to-end instrumentation tests: engines emit spans and metrics.

Covers the acceptance-critical behaviours: cache-hit vs fresh-audit
counters, span nesting across the audit/crawl/api layers, rate-limiter
telemetry, and the guarantee that disabled observability records
nothing.
"""

import pytest

from repro.audit import AuditRequest
from repro.analytics import StatusPeopleFakers
from repro.core import PAPER_EPOCH, SimClock
from repro.obs import NULL_OBS, get_observability, observed
from repro.twitter import add_simple_target, build_world


def make_world():
    world = build_world(seed=17, ref_time=PAPER_EPOCH)
    add_simple_target(world, "tinytown", 3_000, 0.3, 0.2, 0.5)
    return world


class TestAuditInstrumentation:
    def test_fresh_audit_then_cache_hit_counters(self):
        world = make_world()
        with observed() as obs:
            engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
            registry = obs.registry

            engine.audit(AuditRequest(target="tinytown"))
            assert registry.value("cache_events_total",
                                  cache="statuspeople", event="miss") == 1
            assert registry.value("cache_events_total",
                                  cache="statuspeople", event="hit") == 0

            engine.audit(AuditRequest(target="tinytown"))
            assert registry.value("cache_events_total",
                                  cache="statuspeople", event="miss") == 1
            assert registry.value("cache_events_total",
                                  cache="statuspeople", event="hit") == 1

    def test_audit_spans_carry_outcome_attributes(self):
        world = make_world()
        with observed() as obs:
            engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
            fresh = engine.audit(AuditRequest(target="tinytown"))
            engine.audit(AuditRequest(target="tinytown"))
        audits = [span for span in obs.tracer.spans()
                  if span.name == "audit"]
        assert [span.attributes["cached"] for span in audits] == [False, True]
        assert audits[0].attributes["tool"] == "statuspeople"
        assert audits[0].attributes["fake_pct"] == fresh.fake_pct
        assert audits[0].attributes["genuine_pct"] == fresh.genuine_pct
        # The cached audit costs simulated seconds but no API spans.
        assert audits[1].duration > 0

    def test_span_nesting_audit_crawl_api(self):
        world = make_world()
        with observed() as obs:
            engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
            engine.audit(AuditRequest(target="tinytown"))
        spans = obs.tracer.spans()
        names = {span.name for span in spans}
        assert {"audit", "crawl.followers", "crawl.lookup",
                "api.request"} <= names
        audit = next(span for span in spans if span.name == "audit")
        crawl = next(span for span in spans
                     if span.name == "crawl.followers")
        assert crawl.parent_id == audit.span_id
        api_children = [span for span in spans
                        if span.parent_id == crawl.span_id]
        assert api_children
        assert all(span.name == "api.request" for span in api_children)
        assert crawl.attributes["ids"] == 3_000

    def test_api_and_ratelimit_metrics_populated(self):
        world = make_world()
        with observed() as obs:
            engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
            engine.audit(AuditRequest(target="tinytown"))
        registry = obs.registry
        assert registry.value("api_requests_total",
                              resource="users/lookup") > 0
        latency = registry.get("api_request_latency_seconds",
                               resource="users/lookup")
        assert latency is not None
        assert latency.count == registry.value("api_requests_total",
                                               resource="users/lookup")
        tokens = registry.get("ratelimit_tokens_remaining",
                              resource="users/lookup")
        assert tokens is not None
        assert tokens.value >= 0

    def test_call_log_summary_flows_into_observability(self):
        world = make_world()
        with observed() as obs:
            engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
            engine.audit(AuditRequest(target="tinytown"))
        summary = obs.call_log_summary()
        assert "users/lookup" in summary
        stats = summary["users/lookup"]
        assert stats["calls"] == obs.registry.value(
            "api_requests_total", resource="users/lookup")
        assert stats["items"] > 0
        assert list(summary) == sorted(summary)


class TestDisabledObservability:
    def test_default_context_is_the_null_singleton(self):
        assert get_observability() is NULL_OBS

    def test_audit_with_obs_off_records_nothing(self):
        world = make_world()
        assert get_observability() is NULL_OBS
        engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
        report = engine.audit(AuditRequest(target="tinytown"))
        assert report.sample_size > 0
        assert len(NULL_OBS.tracer) == 0
        assert NULL_OBS.registry.series_count() == 0
        assert NULL_OBS.call_log_summary() == {}

    def test_results_identical_with_and_without_observability(self):
        without = StatusPeopleFakers(
            make_world(), SimClock(PAPER_EPOCH)).audit(AuditRequest(target="tinytown"))
        with observed():
            withobs = StatusPeopleFakers(
                make_world(), SimClock(PAPER_EPOCH)).audit(AuditRequest(target="tinytown"))
        assert without == withobs

    def test_observed_restores_previous_context(self):
        with observed() as outer:
            assert get_observability() is outer
            with observed() as inner:
                assert get_observability() is inner
            assert get_observability() is outer
        assert get_observability() is NULL_OBS

    def test_engines_built_while_disabled_stay_silent_later(self):
        world = make_world()
        engine = StatusPeopleFakers(world, SimClock(PAPER_EPOCH))
        with observed() as obs:
            engine.audit(AuditRequest(target="tinytown"))
            # The engine bound the null tracer/registry at construction;
            # activating afterwards must not retroactively instrument it.
            assert len(obs.tracer) == 0
            assert obs.registry.series_count() == 0


class TestExperimentSpans:
    def test_runner_emits_experiment_spans(self):
        pytest.importorskip("numpy")
        from repro.experiments import run_all
        from repro.experiments.testbed import average_accounts
        with observed() as obs:
            run_all(seed=1, ordering_days=2, coverage_trials=1,
                    table2_accounts=average_accounts()[:1],
                    table3_accounts=average_accounts()[:3])
        names = [span.attributes.get("experiment")
                 for span in obs.tracer.spans()
                 if span.name == "experiment"]
        assert names == ["table1", "ordering", "table2", "table3",
                         "acquisition", "purchased_burst", "deepdive",
                         "sample_size"]
        assert len(obs.tracer.span_names()) >= 6
        assert obs.registry.series_count() >= 8
