"""Unit tests for the fleet health dashboard (snapshots + rendering)."""

import io
import json

from repro.obs.live import (
    DetectorBridge,
    FleetDashboard,
    LiveTelemetry,
    SloSpec,
    snapshot_to_json,
)


def _live_with_traffic():
    live = LiveTelemetry(origin=0.0, pane_width=10.0)
    for t in (1.0, 2.0, 12.0):
        live.note("api.requests", t)
    live.note("api.errors", 12.5)
    live.tick(15.0)
    return live


class TestSnapshot:
    def test_snapshot_shape_and_rounding(self):
        live = _live_with_traffic()
        dash = FleetDashboard(live, horizon=100.0)
        snap = dash.snapshot(15.0, fleet={"poll_failures": 0})
        assert snap["frame"] == 1
        assert snap["time"] == 15.0
        assert snap["iso"].startswith("1970-01-01T00:00:15")
        panel = snap["streams"]["api.requests"]
        assert panel == {"count": 3, "sum": 3.0, "last": 1.0, "total": 3.0}
        assert snap["alerts"] == {"active": [], "fired": 0, "resolved": 0}
        assert snap["fleet"] == {"poll_failures": 0}
        assert dash.frames == 1

    def test_floats_are_rounded_for_byte_stability(self):
        live = LiveTelemetry(origin=0.0, pane_width=10.0)
        live.value_stream("x").observe(1.0, 1.0 / 3.0)
        snap = FleetDashboard(live, horizon=100.0).snapshot(2.0)
        assert snap["streams"]["x"]["sum"] == 0.333333

    def test_explicit_panels_select_and_order(self):
        live = _live_with_traffic()
        dash = FleetDashboard(live, panels=("api.errors", "absent.stream"),
                              horizon=100.0)
        snap = dash.snapshot(15.0)
        # Only registered panel streams appear; missing ones are skipped
        # (not invented), keeping the shape mode-invariant.
        assert list(snap["streams"]) == ["api.errors"]

    def test_default_panels_include_bridge_streams(self):
        live = _live_with_traffic()
        live.attach_bridge(DetectorBridge(live.alerts, origin=0.0))
        live.observe_followers("acct", 5.0, 1000)
        snap = FleetDashboard(live, horizon=100.0).snapshot(15.0)
        assert "followers:acct" in snap["streams"]

    def test_slo_status_is_reported(self):
        live = _live_with_traffic()
        live.slos.add(SloSpec(
            name="api-errors", good_stream="api.requests",
            total_stream="api.requests", objective=0.9,
            fast_horizon=20.0, slow_horizon=60.0, burn_threshold=2.0,
            min_events=1))
        live.tick(16.0)
        snap = FleetDashboard(live, horizon=100.0).snapshot(16.0)
        (slo,) = snap["slos"]
        assert slo["name"] == "api-errors"
        assert slo["firing"] is False

    def test_snapshot_json_is_canonical(self):
        live = _live_with_traffic()
        dash = FleetDashboard(live, horizon=100.0)
        line = snapshot_to_json(dash.snapshot(15.0))
        assert "\n" not in line
        parsed = json.loads(line)
        assert line == json.dumps(parsed, sort_keys=True,
                                  separators=(",", ":"))


class TestRendering:
    def test_render_mentions_every_section(self):
        live = _live_with_traffic()
        live.alerts.fire(14.0, "burst:acct", severity="page")
        dash = FleetDashboard(live, horizon=100.0, title="smoke fleet")
        frame = dash.render(dash.snapshot(15.0, fleet={"audits_run": 2}))
        assert frame.splitlines()[0].startswith("=== smoke fleet · frame 1")
        assert "alerts: 1 active (1 fired / 0 resolved): burst:acct" in frame
        assert "api.requests" in frame
        assert "fleet.audits_run: 2" in frame

    def test_write_snapshot_appends_one_line(self):
        live = _live_with_traffic()
        dash = FleetDashboard(live, horizon=100.0)
        sink = io.StringIO()
        dash.write_snapshot(sink, dash.snapshot(15.0))
        dash.write_snapshot(sink, dash.snapshot(16.0))
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["frame"] == 2
