"""Unit tests for the streaming window primitives (repro.obs.live)."""

import pytest

from repro.core import ConfigurationError
from repro.obs.live import (
    CounterRateStream,
    GaugeStream,
    WindowSpec,
    WindowStream,
)


class TestWindowSpec:
    def test_pane_boundaries_depend_only_on_the_spec(self):
        spec = WindowSpec(width=10.0, origin=100.0)
        assert spec.index_of(100.0) == 0
        assert spec.index_of(109.999) == 0
        assert spec.index_of(110.0) == 1
        assert spec.bounds(3) == (130.0, 140.0)

    def test_negative_times_fall_into_negative_panes(self):
        spec = WindowSpec(width=10.0, origin=0.0)
        assert spec.index_of(-0.5) == -1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(width=0.0)
        with pytest.raises(ConfigurationError):
            WindowSpec(width=1.0, retain=0)
        with pytest.raises(ConfigurationError):
            WindowSpec(width=1.0, retain=10**6)


class TestWindowStream:
    def test_tumbling_aggregation(self):
        stream = WindowStream("s", WindowSpec(width=10.0))
        stream.observe(1.0, 2.0)
        stream.observe(5.0, 4.0)
        stream.observe(12.0, 8.0)  # rolls pane 0 closed
        points = stream.points()
        assert [p.index for p in points] == [0, 1]
        first = points[0]
        assert (first.count, first.sum, first.min, first.max) == (2, 6.0, 2.0, 4.0)
        assert first.mean == 3.0
        assert stream.total_count == 3
        assert stream.total_sum == 14.0

    def test_empty_panes_are_skipped(self):
        stream = WindowStream("s", WindowSpec(width=1.0))
        stream.observe(0.5, 1.0)
        stream.observe(100.5, 1.0)  # 99 empty panes in between
        assert [p.index for p in stream.points()] == [0, 100]

    def test_out_of_order_observation_clamps_into_open_pane(self):
        stream = WindowStream("s", WindowSpec(width=10.0))
        stream.observe(25.0, 1.0)  # pane 2 open
        stream.observe(3.0, 5.0)   # pane 0 already conceptually closed
        points = stream.points()
        assert len(points) == 1
        assert points[0].index == 2
        assert points[0].count == 2

    def test_retention_ring_bounds_memory(self):
        stream = WindowStream("s", WindowSpec(width=1.0, retain=4))
        for k in range(10):
            stream.observe(k + 0.5, 1.0)
        points = stream.points()
        assert len(points) == 5  # 4 retained closed + the open pane
        assert points[0].index == 5
        assert stream.total_count == 10  # lifetime totals unaffected

    def test_close_until_closes_elapsed_panes(self):
        stream = WindowStream("s", WindowSpec(width=10.0))
        stream.observe(5.0, 1.0)
        assert stream.latest().index == 0
        stream.close_until(25.0)
        stream.close_until(35.0)  # idempotent with no open pane
        assert [p.index for p in stream.points()] == [0]

    def test_trailing_covers_only_the_horizon(self):
        stream = WindowStream("s", WindowSpec(width=10.0))
        for k in range(5):
            stream.observe(k * 10.0 + 5.0, float(k))
        window = stream.trailing(now=50.0, horizon=20.0)
        # Panes ending after t=30: panes 3 and 4.
        assert window.count == 2
        assert window.sum == 7.0
        assert window.min == 3.0 and window.max == 4.0
        assert window.last == 4.0

    def test_trailing_rejects_non_positive_horizon(self):
        stream = WindowStream("s", WindowSpec(width=10.0))
        with pytest.raises(ConfigurationError):
            stream.trailing(0.0, 0.0)

    def test_needs_a_name(self):
        with pytest.raises(ConfigurationError):
            WindowStream("", WindowSpec(width=1.0))

    def test_replay_determinism(self):
        feed = [(t * 3.7, float(t % 5)) for t in range(50)]

        def run():
            stream = WindowStream("s", WindowSpec(width=10.0))
            for t, v in feed:
                stream.observe(t, v)
            return stream.points()

        assert run() == run()


class TestGaugeStream:
    def test_samples_the_probe_each_tick(self):
        level = {"v": 3.0}
        stream = GaugeStream("g", WindowSpec(width=10.0),
                             probe=lambda: level["v"])
        stream.sample(1.0)
        level["v"] = 7.0
        stream.sample(2.0)
        point = stream.latest()
        assert point.count == 2
        assert point.last == 7.0
        assert point.max == 7.0


class TestCounterRateStream:
    def test_first_sample_is_baseline_only(self):
        total = {"v": 10.0}
        stream = CounterRateStream("c", WindowSpec(width=10.0),
                                   probe=lambda: total["v"])
        stream.sample(1.0)
        assert stream.total_count == 0
        total["v"] = 14.0
        stream.sample(11.0)
        assert stream.latest().sum == 4.0

    def test_zero_delta_just_closes_panes(self):
        total = {"v": 5.0}
        stream = CounterRateStream("c", WindowSpec(width=10.0),
                                   probe=lambda: total["v"])
        stream.sample(1.0)
        stream.sample(11.0)
        assert stream.total_count == 0

    def test_backwards_counter_is_an_error(self):
        total = {"v": 5.0}
        stream = CounterRateStream("c", WindowSpec(width=10.0),
                                   probe=lambda: total["v"])
        stream.sample(1.0)
        total["v"] = 4.0
        with pytest.raises(ConfigurationError):
            stream.sample(2.0)
