"""Unit tests for the sim-clock span tracer: nesting, ids, no-op mode."""

import pytest

from repro.core import PAPER_EPOCH, SimClock
from repro.core.ids import snowflake_timestamp
from repro.obs import NULL_SPAN, NULL_TRACER, Tracer


class TestSpans:
    def test_timestamps_come_from_the_simulated_clock(self):
        clock = SimClock(PAPER_EPOCH)
        tracer = Tracer()
        with tracer.span("work", clock) as span:
            clock.advance(12.5)
        assert span.start == PAPER_EPOCH
        assert span.end == PAPER_EPOCH + 12.5
        assert span.duration == pytest.approx(12.5)

    def test_nesting_records_parent_child_ids(self):
        clock = SimClock(PAPER_EPOCH)
        tracer = Tracer()
        with tracer.span("outer", clock) as outer:
            with tracer.span("inner", clock) as inner:
                clock.advance(1.0)
            with tracer.span("inner2", clock) as inner2:
                clock.advance(1.0)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner2.parent_id == outer.span_id
        assert tracer.children(outer) == (inner, inner2)

    def test_spans_listed_in_start_order_parents_first(self):
        clock = SimClock(PAPER_EPOCH)
        tracer = Tracer()
        with tracer.span("a", clock):
            with tracer.span("b", clock):
                clock.advance(1.0)
        with tracer.span("c", clock):
            pass
        assert [span.name for span in tracer.spans()] == ["a", "b", "c"]
        assert tracer.span_names() == ("a", "b", "c")
        assert len(tracer) == 3

    def test_span_ids_are_unique_and_time_ordered(self):
        clock = SimClock(PAPER_EPOCH)
        tracer = Tracer()
        for __ in range(50):
            with tracer.span("tick", clock):
                pass
        ids = [span.span_id for span in tracer.spans()]
        assert len(set(ids)) == 50
        assert ids == sorted(ids)
        # Snowflakes encode the simulated start instant.
        assert snowflake_timestamp(ids[0]) == pytest.approx(PAPER_EPOCH)

    def test_attributes_initial_and_set(self):
        tracer = Tracer()
        with tracer.span("audit", SimClock(PAPER_EPOCH), tool="fc") as span:
            span.set_attribute("fake_pct", 12.5)
        assert span.attributes == {"tool": "fc", "fake_pct": 12.5}

    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        clock = SimClock(PAPER_EPOCH)
        with pytest.raises(ValueError):
            with tracer.span("boom", clock):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.end is not None
        assert span.attributes["error"] == "ValueError: nope"

    def test_fallback_clock_used_when_none_passed(self):
        fallback = SimClock(PAPER_EPOCH + 123.0)
        tracer = Tracer(fallback)
        with tracer.span("experiment") as span:
            pass
        assert span.start == PAPER_EPOCH + 123.0

    def test_determinism_two_tracers_same_inputs_same_spans(self):
        def run():
            clock = SimClock(PAPER_EPOCH)
            tracer = Tracer()
            with tracer.span("outer", clock):
                clock.advance(2.0)
                with tracer.span("inner", clock, k="v"):
                    clock.advance(1.0)
            return [(s.span_id, s.parent_id, s.name, s.start, s.end)
                    for s in tracer.spans()]
        assert run() == run()


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        assert NULL_TRACER.span("anything", SimClock(PAPER_EPOCH)) is NULL_SPAN
        assert NULL_TRACER.span("other", resource="x") is NULL_SPAN

    def test_no_side_effects(self):
        with NULL_TRACER.span("work") as span:
            span.set_attribute("k", "v")
        assert span is NULL_SPAN
        assert NULL_SPAN.attributes == {}
        assert NULL_TRACER.spans() == ()
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.enabled is False
