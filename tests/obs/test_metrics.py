"""Unit tests for the metrics registry: instruments, labels, no-op mode."""

import pytest

from repro.core import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    canonical_labels,
)
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogramBucketEdges:
    def test_value_on_edge_falls_into_that_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        hist.observe(1.0)   # == first edge -> first bucket (le semantics)
        hist.observe(5.0)   # == second edge -> second bucket
        hist.observe(5.1)   # just above -> third bucket
        hist.observe(99.0)  # beyond all edges -> +Inf
        hist.observe(0.0)   # below all edges -> first bucket
        assert hist.bucket_counts() == (2, 1, 1, 1)
        assert hist.cumulative_counts() == (2, 3, 4, 5)
        assert hist.count == 5
        assert hist.sum == pytest.approx(110.1)

    def test_rejects_unsorted_or_empty_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", buckets=())

    def test_conflicting_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=(3.0, 4.0))


class TestHistogramQuantile:
    def test_interpolates_inside_the_rank_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(10.0, 20.0, 40.0))
        for value in (5.0, 15.0, 15.0, 35.0):
            hist.observe(value)
        # rank 2 of 4 lands at the end of the (10, 20] bucket's first
        # observation: 10 + (2 - 1) / 2 * 10 = 15.
        assert hist.quantile(0.5) == pytest.approx(15.0)
        # The first bucket interpolates from zero.
        assert hist.quantile(0.25) == pytest.approx(10.0)
        assert hist.quantile(1.0) == pytest.approx(40.0)

    def test_overflow_ranks_clamp_to_the_last_finite_edge(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)  # +Inf bucket only
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_estimates_zero(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0

    def test_q0_is_the_lower_edge_of_the_lowest_occupied_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.5)  # only the (1, 2] bucket holds data
        assert hist.quantile(0.0) == 1.0
        hist.observe(0.5)  # now the first bucket does
        assert hist.quantile(0.0) == 0.0

    def test_q0_with_only_overflow_data_clamps_to_the_last_edge(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.0) == 2.0

    def test_q1_is_the_upper_edge_of_the_highest_occupied_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        assert hist.quantile(1.0) == 2.0

    def test_q1_with_only_overflow_data_clamps_to_the_last_edge(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(1.0) == 2.0

    def test_single_bucket_degenerates_but_never_errors(self):
        hist = MetricsRegistry().histogram("h", buckets=(10.0,))
        hist.observe(5.0)
        hist.observe(5.0)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == 10.0
        hist.observe(100.0)  # overflow rank clamps at the only edge
        assert hist.quantile(0.9) == 10.0

    def test_rejects_out_of_range_quantiles(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)
        with pytest.raises(ConfigurationError):
            hist.quantile(-0.1)

    def test_null_histogram_estimates_zero(self):
        assert NULL_HISTOGRAM.quantile(0.5) == 0.0


class TestRegistry:
    def test_same_labels_share_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("api_total", resource="users/lookup")
        b = registry.counter("api_total", resource="users/lookup")
        c = registry.counter("api_total", resource="friends/ids")
        assert a is b
        assert a is not c

    def test_label_order_is_canonicalised(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b
        assert canonical_labels({"y": 2, "x": 1}) == (("x", "1"), ("y", "2"))

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError):
            registry.gauge("m")
        with pytest.raises(ConfigurationError):
            registry.histogram("m", buckets=(1.0,))

    def test_series_iterate_in_sorted_order(self):
        registry = MetricsRegistry()
        registry.counter("z_total", resource="b")
        registry.counter("a_total")
        registry.counter("z_total", resource="a")
        listed = [(name, labels) for name, __, labels, __ in registry.series()]
        assert listed == [
            ("a_total", ()),
            ("z_total", (("resource", "a"),)),
            ("z_total", (("resource", "b"),)),
        ]
        assert registry.series_count() == 3

    def test_get_and_value_do_not_create_series(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.value("nope") == 0.0
        assert registry.series_count() == 0


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("x", resource="r") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("y") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("z", buckets=(1.0,)) is NULL_HISTOGRAM

    def test_no_side_effects(self):
        NULL_COUNTER.inc(100.0)
        NULL_GAUGE.set(42.0)
        NULL_HISTOGRAM.observe(3.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_REGISTRY.series_count() == 0
        assert list(NULL_REGISTRY.series()) == []
        assert NULL_REGISTRY.enabled is False
