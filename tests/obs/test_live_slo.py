"""Unit tests for SLO burn-rate alerting and the alert log."""

import json

import pytest

from repro.core import ConfigurationError
from repro.obs.live import (
    AlertLog,
    SloEvaluator,
    SloSpec,
    WindowSpec,
    WindowStream,
)


def _streams(width=10.0):
    good = WindowStream("good", WindowSpec(width=width))
    total = WindowStream("total", WindowSpec(width=width))
    return {"good": good, "total": total}


def _spec(**overrides):
    base = dict(name="svc", good_stream="good", total_stream="total",
                objective=0.9, fast_horizon=20.0, slow_horizon=60.0,
                burn_threshold=2.0, min_events=1)
    base.update(overrides)
    return SloSpec(**base)


class TestAlertLog:
    def test_fire_and_resolve_lifecycle(self):
        log = AlertLog()
        assert log.fire(1.0, "a", z=1.5) is not None
        assert log.fire(2.0, "a") is None  # already active: no-op
        assert log.active() == ("a",)
        assert log.is_active("a")
        assert log.resolve(3.0, "a") is not None
        assert log.resolve(4.0, "a") is None  # not active: no-op
        assert log.counts() == (1, 1)

    def test_resolve_inherits_fire_severity(self):
        log = AlertLog()
        log.fire(1.0, "a", severity="ticket")
        event = log.resolve(2.0, "a")
        assert event.severity == "ticket"

    def test_jsonl_is_canonical_and_replayable(self):
        log = AlertLog()
        log.fire(1.0, "a", ratio=0.123456789, day=3)
        log.resolve(2.0, "a")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["details"]["ratio"] == 0.123457  # rounded to 6dp
        assert list(first) == sorted(first)  # sorted keys

    def test_write_round_trips(self, tmp_path):
        log = AlertLog()
        log.fire(1.0, "a")
        path = tmp_path / "alerts.jsonl"
        log.write(path)
        assert path.read_text(encoding="utf-8") == log.to_jsonl()


class TestSloSpec:
    def test_validates_fields(self):
        with pytest.raises(ConfigurationError):
            _spec(objective=1.0)
        with pytest.raises(ConfigurationError):
            _spec(fast_horizon=30.0, slow_horizon=20.0)
        with pytest.raises(ConfigurationError):
            _spec(burn_threshold=0.0)
        with pytest.raises(ConfigurationError):
            _spec(min_events=0)

    def test_error_budget(self):
        assert _spec(objective=0.98).error_budget == pytest.approx(0.02)


class TestSloEvaluator:
    def test_fires_only_when_both_windows_burn(self):
        streams = _streams()
        log = AlertLog()
        evaluator = SloEvaluator(log)
        status = evaluator.add(_spec())
        # A long healthy stretch fills the slow window with good events.
        for k in range(5):
            t = k * 10.0 + 5.0
            streams["total"].observe(t, 1.0)
            streams["good"].observe(t, 1.0)
        evaluator.evaluate(50.0, streams)
        assert not status.firing
        # A fresh failure: the fast window burns above threshold but
        # the slow window still dilutes it.
        streams["total"].observe(55.0, 1.0)
        evaluator.evaluate(56.0, streams)
        assert status.fast_burn >= 2.0
        assert not status.firing  # slow window holds it back
        # Sustained failures push the slow window over too.
        for t in (58.0, 62.0, 66.0):
            streams["total"].observe(t, 8.0)
        evaluator.evaluate(70.0, streams)
        assert status.firing
        assert log.active() == ("slo:svc",)

    def test_resolves_when_burn_recovers(self):
        streams = _streams()
        log = AlertLog()
        evaluator = SloEvaluator(log)
        status = evaluator.add(_spec())
        streams["total"].observe(5.0, 10.0)  # all bad
        evaluator.evaluate(6.0, streams)
        assert status.firing
        # A long quiet+good stretch drains both windows.
        for k in range(1, 9):
            t = k * 10.0 + 5.0
            streams["total"].observe(t, 10.0)
            streams["good"].observe(t, 10.0)
        evaluator.evaluate(90.0, streams)
        assert not status.firing
        assert log.counts() == (1, 1)

    def test_min_events_suppresses_thin_windows(self):
        streams = _streams()
        evaluator = SloEvaluator(AlertLog())
        status = evaluator.add(_spec(min_events=5))
        streams["total"].observe(5.0, 2.0)  # 2 events, all bad
        evaluator.evaluate(6.0, streams)
        assert status.fast_burn == 0.0
        assert not status.firing

    def test_unknown_streams_are_an_error(self):
        evaluator = SloEvaluator(AlertLog())
        evaluator.add(_spec(good_stream="nope"))
        with pytest.raises(ConfigurationError):
            evaluator.evaluate(1.0, _streams())

    def test_duplicate_names_rejected(self):
        evaluator = SloEvaluator(AlertLog())
        evaluator.add(_spec())
        with pytest.raises(ConfigurationError):
            evaluator.add(_spec())
