"""Perf baseline store and regression detector tests.

Hand-built documents exercise every tolerance class of
:func:`diff_perf`; a real (small) workload run pins the byte-exact
``BENCH_perf.json`` a record produces, which is the property that lets
the artifact live in git as the repo's perf trajectory.
"""

import copy
import pathlib

import pytest

from repro.audit import AuditRequest
from repro.core import PAPER_EPOCH, SimClock
from repro.core.errors import ConfigurationError
from repro.obs import (
    PERF_SCHEMA,
    PerfTolerances,
    collect_perf,
    diff_perf,
    load_perf_json,
    observed,
    render_perf_diff,
    render_perf_json,
    write_perf_json,
)
from repro.sched import BatchAuditScheduler
from repro.twitter import add_simple_target, build_world

GOLDEN = pathlib.Path(__file__).parent / "golden"


def sample_doc():
    """A minimal, valid perf document with easy round numbers."""
    return {
        "schema": PERF_SCHEMA,
        "workload": {"seed": 42, "targets": ["alpha"], "lane_slots": 2,
                     "max_followers": 1000},
        "makespan_seconds": 100.0,
        "audits": 4,
        "errors": 0,
        "coalesced_hits": 0,
        "phase_totals_seconds": {
            "fc": {"frame": 50.0, "classify": 10.0, "other": 5.0},
        },
        "cache": {"lookups": 10, "hits": 5, "hit_ratio": 0.5,
                  "acq_cache_hits": 3},
        "api": {"requests_total": 40, "items_total": 4000,
                "ratelimit_wait_seconds": 30.0},
        "faults": {"injected_total": 0, "retries_total": 0,
                   "backoff_wait_seconds": 0.0},
        "critical_path": {"lane": "fc", "slot": 0,
                          "busy_seconds": 65.0, "idle_seconds": 35.0},
    }


def perturbed(doc, path, value):
    """A deep copy of ``doc`` with one dotted ``path`` replaced."""
    out = copy.deepcopy(doc)
    node = out
    *parents, leaf = path.split(".")
    for key in parents:
        node = node[key]
    node[leaf] = value
    return out


def breach_keys(breaches):
    return [breach.key for breach in breaches]


class TestDiffTolerances:
    def test_identical_documents_have_no_breaches(self):
        breaches, compared = diff_perf(sample_doc(), sample_doc())
        assert breaches == []
        assert compared == 26  # every flattened leaf visited

    def test_makespan_within_five_percent_passes(self):
        current = perturbed(sample_doc(), "makespan_seconds", 104.0)
        breaches, __ = diff_perf(sample_doc(), current)
        assert breaches == []

    def test_makespan_beyond_five_percent_breaches(self):
        current = perturbed(sample_doc(), "makespan_seconds", 106.0)
        breaches, __ = diff_perf(sample_doc(), current)
        assert breach_keys(breaches) == ["makespan_seconds"]
        assert "+6.0% outside +/-5%" in breaches[0].reason

    def test_phase_class_is_looser_than_makespan(self):
        current = perturbed(sample_doc(),
                            "phase_totals_seconds.fc.frame", 54.0)
        assert diff_perf(sample_doc(), current)[0] == []
        current = perturbed(sample_doc(),
                            "phase_totals_seconds.fc.frame", 56.0)
        breaches, __ = diff_perf(sample_doc(), current)
        assert breach_keys(breaches) == ["phase_totals_seconds.fc.frame"]

    def test_hit_ratio_compares_absolutely(self):
        assert diff_perf(sample_doc(),
                         perturbed(sample_doc(), "cache.hit_ratio",
                                   0.54))[0] == []
        breaches, __ = diff_perf(
            sample_doc(), perturbed(sample_doc(), "cache.hit_ratio", 0.56))
        assert breach_keys(breaches) == ["cache.hit_ratio"]
        assert "|delta|" in breaches[0].reason

    def test_zero_baseline_tolerates_only_zero(self):
        breaches, __ = diff_perf(sample_doc(),
                                 perturbed(sample_doc(), "errors", 1))
        assert breach_keys(breaches) == ["errors"]
        assert "baseline is zero" in breaches[0].reason

    def test_workload_must_match_exactly(self):
        # +2.4% on a counter would pass; on the workload it's a breach.
        current = perturbed(sample_doc(), "workload.seed", 43)
        breaches, __ = diff_perf(sample_doc(), current)
        assert breach_keys(breaches) == ["workload.seed"]
        assert "workload/schema mismatch" in breaches[0].reason

    def test_schema_must_match_exactly(self):
        current = perturbed(sample_doc(), "schema", PERF_SCHEMA + 1)
        breaches, __ = diff_perf(sample_doc(), current)
        assert breach_keys(breaches) == ["schema"]

    def test_missing_and_extra_leaves_breach(self):
        current = copy.deepcopy(sample_doc())
        del current["cache"]["acq_cache_hits"]
        current["cache"]["novel"] = 1
        breaches, __ = diff_perf(sample_doc(), current)
        reasons = {breach.key: breach.reason for breach in breaches}
        assert reasons["cache.acq_cache_hits"] == "missing from current"
        assert reasons["cache.novel"] == "not in baseline"

    def test_non_numeric_leaves_compare_by_equality(self):
        current = perturbed(sample_doc(), "critical_path.lane",
                            "socialbakers")
        breaches, __ = diff_perf(sample_doc(), current)
        assert breach_keys(breaches) == ["critical_path.lane"]
        assert breaches[0].reason == "value changed"

    def test_custom_tolerances_loosen_the_gate(self):
        current = perturbed(sample_doc(), "makespan_seconds", 120.0)
        loose = PerfTolerances(makespan_pct=50.0)
        assert diff_perf(sample_doc(), current, loose)[0] == []


class TestRenderDiff:
    def test_clean_diff_renders_all_within_tolerance(self):
        breaches, compared = diff_perf(sample_doc(), sample_doc())
        rendered = render_perf_diff(breaches, compared, "BENCH_perf.json")
        assert rendered.startswith("perf diff vs BENCH_perf.json:")
        assert rendered.endswith("all within tolerance")

    def test_breach_report_matches_golden(self):
        current = perturbed(sample_doc(), "makespan_seconds", 120.0)
        current = perturbed(current, "phase_totals_seconds.fc.frame", 70.0)
        current = perturbed(current, "cache.hit_ratio", 0.9)
        current = perturbed(current, "errors", 2)
        breaches, compared = diff_perf(sample_doc(), current)
        rendered = render_perf_diff(breaches, compared, "BENCH_perf.json")
        assert rendered + "\n" == \
            (GOLDEN / "perf_diff.txt").read_text(encoding="utf-8")


class TestRoundTrip:
    def test_write_then_load_preserves_the_document(self, tmp_path):
        target = write_perf_json(sample_doc(), tmp_path / "perf.json")
        assert load_perf_json(target) == sample_doc()

    def test_render_is_byte_stable(self):
        assert render_perf_json(sample_doc()) == \
            render_perf_json(sample_doc())
        # Canonical form: sorted keys, trailing newline.
        lines = render_perf_json(sample_doc()).splitlines()
        assert lines[1].strip().startswith('"api"')

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot load"):
            load_perf_json(tmp_path / "nope.json")

    def test_load_rejects_non_object_documents(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a JSON object"):
            load_perf_json(path)


class TestCollectPerf:
    """collect_perf on a real (tiny) observed batch run."""

    @pytest.fixture(scope="class")
    def collected(self):
        with observed() as obs:
            world = build_world(seed=23, ref_time=PAPER_EPOCH)
            add_simple_target(world, "alpha", 6_000, 0.35, 0.15, 0.50)
            add_simple_target(world, "bravo", 4_000, 0.25, 0.30, 0.45)
            clock = SimClock(world.ref_time)
            scheduler = BatchAuditScheduler(world, clock, seed=7,
                                            lane_slots=2)
            scheduler.submit_batch([AuditRequest(target="alpha"),
                                    AuditRequest(target="bravo")])
            batch = scheduler.run()
        workload = {"seed": 7, "targets": ["alpha", "bravo"],
                    "lane_slots": 2, "max_followers": None}
        return collect_perf(obs, batch, workload), batch

    def test_document_mirrors_the_batch_report(self, collected):
        doc, batch = collected
        assert doc["schema"] == PERF_SCHEMA
        assert doc["audits"] == len(batch.items) == 8
        assert doc["errors"] == 0
        assert doc["makespan_seconds"] == pytest.approx(
            batch.makespan_seconds, abs=1e-6)
        assert sorted(doc["phase_totals_seconds"]) == \
            ["fc", "socialbakers", "statuspeople", "twitteraudit"]

    def test_counters_are_populated(self, collected):
        doc, __ = collected
        assert doc["api"]["requests_total"] > 0
        assert doc["cache"]["lookups"] >= doc["cache"]["hits"] >= 0
        assert 0.0 <= doc["cache"]["hit_ratio"] <= 1.0
        assert doc["critical_path"]["lane"] in doc["phase_totals_seconds"]

    def test_document_survives_the_canonical_serialisation(
            self, collected, tmp_path):
        doc, __ = collected
        target = write_perf_json(doc, tmp_path / "perf.json")
        reloaded = load_perf_json(target)
        breaches, __ = diff_perf(doc, reloaded)
        assert breaches == []


class TestWallclockClass:
    """The opt-in, machine-local ``wallclock`` measurement class."""

    def test_measure_wallclock_returns_the_median(self):
        from repro.obs import measure_wallclock
        calls = []
        assert measure_wallclock(lambda: calls.append(1), repeats=5) >= 0.0
        assert len(calls) == 5

    def test_measure_wallclock_rejects_zero_repeats(self):
        from repro.obs import measure_wallclock
        with pytest.raises(ConfigurationError, match="repeats"):
            measure_wallclock(lambda: None, repeats=0)

    def test_collect_perf_omits_the_section_by_default(self):
        # The default document must stay byte-identical to pre-wallclock
        # baselines; the section appears only when measurements are
        # handed in.
        assert "wallclock" not in sample_doc()
        with_section = dict(sample_doc())
        with_section["wallclock"] = {"fc_scalar_seconds": 1.0}
        assert "wallclock" in with_section

    def test_one_sided_wallclock_leaves_are_skipped(self):
        # A baseline recorded with --wallclock must still gate a
        # current recorded without it: the machine-local leaves are
        # skipped, never breached, and not counted as compared.
        base = sample_doc()
        base["wallclock"] = {"fc_rows": 2000, "fc_scalar_seconds": 1.5,
                             "fc_batch_seconds": 0.1}
        __, plain_compared = diff_perf(sample_doc(), sample_doc())
        breaches, compared = diff_perf(base, sample_doc())
        assert breaches == []
        assert compared == plain_compared
        breaches, __ = diff_perf(sample_doc(), base)
        assert breaches == []

    def test_two_sided_wallclock_uses_the_generous_tolerance(self):
        base = sample_doc()
        base["wallclock"] = {"fc_scalar_seconds": 1.0}
        current = copy.deepcopy(base)
        current["wallclock"]["fc_scalar_seconds"] = 2.5  # +150%: fine
        breaches, __ = diff_perf(base, current)
        assert breaches == []
        current["wallclock"]["fc_scalar_seconds"] = 4.0  # +300%: breach
        breaches, __ = diff_perf(base, current)
        assert breach_keys(breaches) == ["wallclock.fc_scalar_seconds"]

    def test_wallclock_tolerance_is_configurable(self):
        base = sample_doc()
        base["wallclock"] = {"fc_scalar_seconds": 1.0}
        current = copy.deepcopy(base)
        current["wallclock"]["fc_scalar_seconds"] = 1.2
        tight = PerfTolerances(wallclock_pct=10.0)
        breaches, __ = diff_perf(base, current, tight)
        assert breach_keys(breaches) == ["wallclock.fc_scalar_seconds"]

    def test_measure_fc_wallclock_reports_both_paths(self):
        from repro.experiments.perf import measure_fc_wallclock
        doc = measure_fc_wallclock(rows=60, repeats=1)
        assert doc["fc_rows"] == 60
        assert doc["fc_scalar_seconds"] > 0.0
        assert doc["fc_batch_seconds"] > 0.0
        assert doc["fc_batch_speedup"] == pytest.approx(
            doc["fc_scalar_seconds"] / doc["fc_batch_seconds"], rel=1e-6)


class TestSubstrateClass:
    """The opt-in ``substrate`` measurement class: columnar paging."""

    def test_one_sided_substrate_leaves_are_skipped(self):
        # Like wallclock: a baseline recorded with --substrate must
        # still gate a current recorded without it.
        base = sample_doc()
        base["substrate"] = {"chunks_materialized": 3,
                             "page_fetch_seconds": 0.001}
        __, plain_compared = diff_perf(sample_doc(), sample_doc())
        breaches, compared = diff_perf(base, sample_doc())
        assert breaches == []
        assert compared == plain_compared
        breaches, __ = diff_perf(sample_doc(), base)
        assert breaches == []

    def test_substrate_counters_gate_at_counter_tolerance(self):
        base = sample_doc()
        base["substrate"] = {"rows_generated": 100}
        current = copy.deepcopy(base)
        current["substrate"]["rows_generated"] = 109  # +9%: within 10%
        assert diff_perf(base, current)[0] == []
        current["substrate"]["rows_generated"] = 115  # +15%: breach
        breaches, __ = diff_perf(base, current)
        assert breach_keys(breaches) == ["substrate.rows_generated"]

    def test_substrate_seconds_gate_at_wallclock_tolerance(self):
        base = sample_doc()
        base["substrate"] = {"page_fetch_seconds": 0.001}
        current = copy.deepcopy(base)
        current["substrate"]["page_fetch_seconds"] = 0.0025  # +150%: fine
        assert diff_perf(base, current)[0] == []
        current["substrate"]["page_fetch_seconds"] = 0.004  # +300%: breach
        breaches, __ = diff_perf(base, current)
        assert breach_keys(breaches) == ["substrate.page_fetch_seconds"]
        tight = PerfTolerances(wallclock_pct=10.0)
        current["substrate"]["page_fetch_seconds"] = 0.0012
        breaches, __ = diff_perf(base, current, tight)
        assert breach_keys(breaches) == ["substrate.page_fetch_seconds"]

    def test_measure_substrate_counters_are_deterministic(self):
        from repro.experiments.perf import measure_substrate
        kwargs = dict(followers=20_000, pages=3, page_size=500,
                      lookups=40, repeats=1)
        first = measure_substrate(seed=3, **kwargs)
        second = measure_substrate(seed=3, **kwargs)
        deterministic = [key for key in first
                         if not key.endswith("_seconds")]
        assert {k: first[k] for k in deterministic} == \
            {k: second[k] for k in deterministic}
        assert first["pages_fetched"] == 3
        assert first["ids_fetched"] == 1500
        assert first["lookups"] == 40
        assert first["rows_generated"] == 40  # lookups, never O(pop)
        assert first["page_fetch_seconds"] > 0.0
        assert first["lookup_seconds"] > 0.0

    def test_collect_perf_attaches_the_section(self):
        # Additive, like wallclock: absent unless handed in.
        paging = {"rows_generated": 40, "page_fetch_seconds": 0.001}
        doc = dict(sample_doc())
        assert "substrate" not in doc
        doc["substrate"] = dict(paging)
        flat_keys = {"substrate.rows_generated",
                     "substrate.page_fetch_seconds"}
        from repro.obs.perf import _flatten
        assert flat_keys <= set(_flatten(doc))
