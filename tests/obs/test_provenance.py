"""Unit tests for decision-level provenance (``repro.obs.provenance``)."""

from __future__ import annotations

import pytest

from repro.analytics.criteria import VerdictArray
from repro.core.errors import ConfigurationError
from repro.obs.provenance import (
    AuditProvenance,
    ProvenanceCollector,
    ProvenanceSink,
    build_disagreement,
    build_stats,
    canonical_verdict,
    pack_mask,
    render_rule_table,
    unpack_mask,
)
from repro.obs.runtime import observed

try:
    import numpy
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    numpy = None


class TestPackMask:
    def test_msb_first_single_byte(self):
        assert pack_mask([True] + [False] * 7) == b"\x80"
        assert pack_mask([False] * 7 + [True]) == b"\x01"

    def test_partial_trailing_byte_zero_padded(self):
        assert pack_mask([True, False, True]) == b"\xa0"

    def test_empty(self):
        assert pack_mask([]) == b""
        assert unpack_mask(b"", 0) == []

    def test_round_trip(self):
        bits = [bool((i * 7) % 3) for i in range(21)]
        assert unpack_mask(pack_mask(bits), 21) == bits

    @pytest.mark.skipif(numpy is None, reason="needs numpy")
    def test_numpy_and_pure_python_pack_identically(self):
        for size in (0, 1, 7, 8, 9, 16, 23, 64):
            bits = [bool((i * 5) % 3 == 1) for i in range(size)]
            array = numpy.array(bits, dtype=bool)
            assert pack_mask(array) == pack_mask(bits), size
            assert pack_mask(array) == numpy.packbits(
                array.astype(numpy.uint8)).tobytes()


class TestSink:
    def test_preserves_add_order(self):
        sink = ProvenanceSink()
        sink.add("b.two", [True])
        sink.add("a.one", [False])
        assert sink.rule_ids == ("b.two", "a.one")
        assert len(sink) == 2
        assert sink.mask("b.two") == [True]
        assert sink.packed() == {"b.two": b"\x80", "a.one": b"\x00"}

    def test_duplicate_rule_rejected(self):
        sink = ProvenanceSink()
        sink.add("x.r", [True])
        with pytest.raises(ConfigurationError):
            sink.add("x.r", [False])


class TestCanonicalVerdict:
    def test_vocabulary(self):
        assert canonical_verdict("good") == "genuine"
        assert canonical_verdict("real") == "genuine"
        assert canonical_verdict("not sure") == "unsure"
        assert canonical_verdict("fake") == "fake"
        assert canonical_verdict("inactive") == "inactive"

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_verdict("suspicious")


def _sink(masks):
    sink = ProvenanceSink()
    for rule, mask in masks.items():
        sink.add(rule, mask)
    return sink


class TestBuildStats:
    LABELS = ("fake", "good")
    CODES = (0, 0, 1, 1)
    MASKS = {"e.a": [True, True, False, False],
             "e.b": [True, False, False, True]}

    def test_aggregates(self):
        stats = build_stats(self.LABELS, self.CODES,
                            _sink(self.MASKS), 4)
        assert stats.sample_size == 4
        assert stats.fired == {"e.a": 2, "e.b": 2}
        assert stats.co_fired["e.a"]["e.b"] == 1
        assert stats.co_fired["e.a"]["e.a"] == 2
        assert stats.by_verdict["fake"] == {"e.a": 2, "e.b": 1}
        assert stats.by_verdict["good"] == {"e.a": 0, "e.b": 1}

    @pytest.mark.skipif(numpy is None, reason="needs numpy")
    def test_numpy_and_pure_python_agree(self):
        pure = build_stats(self.LABELS, self.CODES, _sink(self.MASKS), 4)
        columnar = build_stats(
            self.LABELS, numpy.array(self.CODES),
            _sink({rule: numpy.array(mask)
                   for rule, mask in self.MASKS.items()}), 4)
        assert columnar.fired == pure.fired
        assert columnar.co_fired == pure.co_fired
        assert columnar.by_verdict == pure.by_verdict

    def test_as_dict_drops_zero_entries_and_diagonal(self):
        stats = build_stats(self.LABELS, self.CODES, _sink(self.MASKS), 4)
        payload = stats.as_dict()
        assert payload["fired"] == {"e.a": 2, "e.b": 2}
        assert "e.a" not in payload["co_fired"].get("e.a", {})
        assert payload["by_verdict"]["good"] == {"e.b": 1}
        assert "e.a" not in payload["by_verdict"]["good"]


def _record(collector, engine, labels, codes, masks, user_ids, t=0.0):
    return collector.record(
        engine, "target", VerdictArray(labels=labels, codes=list(codes)),
        _sink(masks), user_ids, t)


class TestCollector:
    def test_record_round_trips_fired_sets(self):
        collector = ProvenanceCollector()
        record = _record(collector, "sp", ("fake", "good"), (0, 1),
                         {"sp.r1": [True, False], "sp.r2": [True, True]},
                         (11, 22))
        assert isinstance(record, AuditProvenance)
        assert record.sample_size == 2
        assert record.verdicts_by_user() == {11: "fake", 22: "good"}
        assert record.fired_by_user() == {
            11: ("sp.r1", "sp.r2"), 22: ("sp.r2",)}
        assert len(collector) == 1

    def test_for_target_keeps_latest_per_engine(self):
        collector = ProvenanceCollector()
        _record(collector, "sp", ("fake",), (0,), {"sp.r": [True]}, (1,))
        latest = _record(collector, "sp", ("fake",), (0,),
                         {"sp.r": [False]}, (1,))
        assert collector.for_target("TARGET") == {"sp": latest}
        assert collector.for_target("elsewhere") == {}

    def test_metrics_lazy_only_fired_rules(self):
        with observed() as obs:
            collector = ProvenanceCollector()
            _record(collector, "sp", ("fake", "good"), (0, 1),
                    {"sp.hot": [True, True], "sp.cold": [False, False]},
                    (1, 2))
            series = {
                labels: instrument.value
                for name, __, labels, instrument in obs.registry.series()
                if name == "rule_fired_total"}
        assert series == {
            (("engine", "sp"), ("rule", "sp.hot")): 2}

    def test_no_metrics_outside_observed_context(self):
        collector = ProvenanceCollector()
        _record(collector, "sp", ("fake",), (0,), {"sp.r": [True]}, (1,))
        assert len(collector) == 1  # records still accumulate


class TestDisagreement:
    def _records(self):
        collector = ProvenanceCollector()
        # Engine A: user 1 fake, user 2 good; engine B: both real.
        a = _record(collector, "a", ("fake", "good"), (0, 1),
                    {"a.spam": [True, False]}, (1, 2))
        b = _record(collector, "b", ("fake", "real"), (1, 1),
                    {"b.quiet": [False, False]}, (1, 2))
        return {"a": a, "b": b}

    def test_cells_attribute_separating_rules(self):
        report = build_disagreement("target", self._records())
        assert report.engines == ("a", "b")
        assert report.overlap[("a", "b")] == 2
        assert len(report.cells) == 1
        cell = report.cells[0]
        assert (cell.verdict_a, cell.verdict_b) == ("fake", "genuine")
        assert cell.count == 1
        assert cell.rules_a == (("a.spam", 1),)
        assert cell.separating_rules == ("a.spam",)

    def test_render_names_rules(self):
        rendered = build_disagreement("target", self._records()).render()
        assert "a=fake vs b=genuine: 1/2 shared accounts" in rendered
        assert "a.spam x1" in rendered

    def test_requires_two_engines(self):
        records = self._records()
        with pytest.raises(ConfigurationError):
            build_disagreement("target", {"a": records["a"]})

    def test_agreement_renders_empty_drilldown(self):
        collector = ProvenanceCollector()
        a = _record(collector, "a", ("good",), (0,), {"a.r": [False]}, (1,))
        b = _record(collector, "b", ("real",), (0,), {"b.r": [False]}, (1,))
        rendered = build_disagreement("t", {"a": a, "b": b}).render()
        assert "no cross-engine disagreement" in rendered

    def test_rule_table_lists_fired_rules_with_attribution(self):
        rendered = render_rule_table(self._records())
        assert "rule fires by engine" in rendered
        assert "a.spam" in rendered
        assert "fake=1" in rendered
        assert "b.quiet" not in rendered  # zero fires are dropped
