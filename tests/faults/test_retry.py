"""Unit tests for the retry policy and its per-client state."""

import pytest

from repro.core import ConfigurationError
from repro.core.errors import (
    RateLimitExceededError,
    TransientServerError,
    UnknownAccountError,
)
from repro.faults import RetryPolicy, RetryState


def transient():
    return TransientServerError("users/lookup")


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_backoff=2.0, multiplier=2.0,
                             max_backoff=10.0)
        assert policy.backoff(0) == 2.0
        assert policy.backoff(1) == 4.0
        assert policy.backoff(2) == 8.0
        assert policy.backoff(3) == 10.0  # capped
        assert policy.backoff(10) == 10.0

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_backoff": 0.0},
        {"multiplier": 0.9},
        {"max_backoff": 1.0, "base_backoff": 2.0},
        {"jitter": 1.5},
        {"budget_per_resource": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRetryState:
    def test_non_retryable_error_is_refused(self):
        state = RetryState(RetryPolicy())
        assert state.next_wait("r", 0, UnknownAccountError("nope"), 0.0) \
            is None

    def test_attempt_allowance(self):
        state = RetryState(RetryPolicy(max_attempts=3))
        assert state.next_wait("r", 0, transient(), 0.0) is not None
        assert state.next_wait("r", 1, transient(), 0.0) is not None
        # Attempt 3 would be the 4th try: beyond max_attempts.
        assert state.next_wait("r", 2, transient(), 0.0) is None

    def test_budget_is_per_resource_and_resettable(self):
        state = RetryState(RetryPolicy(budget_per_resource=2))
        assert state.next_wait("a", 0, transient(), 0.0) is not None
        assert state.next_wait("a", 0, transient(), 0.0) is not None
        assert state.next_wait("a", 0, transient(), 0.0) is None  # spent
        assert state.spent("a") == 2
        # Another resource has its own budget.
        assert state.next_wait("b", 0, transient(), 0.0) is not None
        state.reset()
        assert state.spent("a") == 0
        assert state.next_wait("a", 0, transient(), 0.0) is not None

    def test_retry_after_raises_the_wait(self):
        state = RetryState(RetryPolicy(base_backoff=1.0, jitter=0.0))
        error = RateLimitExceededError("users/lookup", retry_after=45.0)
        wait = state.next_wait("users/lookup", 0, error, 0.0)
        assert wait == 45.0

    def test_wait_never_decreases_below_previous(self):
        state = RetryState(RetryPolicy(base_backoff=2.0, jitter=0.0))
        wait = state.next_wait("r", 0, transient(), previous_wait=99.0)
        assert wait == 99.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter=0.5, seed=13)
        waits_a = [RetryState(policy).next_wait("r", i, transient(), 0.0)
                   for i in range(3)]
        waits_b = [RetryState(policy).next_wait("r", i, transient(), 0.0)
                   for i in range(3)]
        assert waits_a == waits_b

    def test_monotone_sequence_under_jitter_and_cap(self):
        """Threaded previous_wait keeps each attempt sequence monotone."""
        policy = RetryPolicy(max_attempts=8, base_backoff=1.0,
                             multiplier=2.0, max_backoff=5.0, jitter=0.9,
                             budget_per_resource=100)
        state = RetryState(policy)
        previous = 0.0
        waits = []
        for retry_index in range(7):
            wait = state.next_wait("r", retry_index, transient(), previous)
            assert wait is not None
            waits.append(wait)
            previous = wait
        assert waits == sorted(waits)
