"""Chaos regression scenarios pinned by a golden digest.

Each scenario reruns all four engines against the same small world
under a named fault plan and asserts graceful degradation: engines
return partial results (``completeness < 1.0``) instead of raising,
and the whole sweep is deterministic enough to pin byte-for-byte in
``tests/faults/golden/scenarios.json``.

Regenerate the golden after an intentional behavior change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/faults/test_chaos_scenarios.py
"""

import json
import os
import pathlib

import pytest

from repro.audit import AuditRequest
from repro.core import PAPER_EPOCH, SimClock
from repro.experiments.response_time import ENGINE_ORDER, build_engines
from repro.faults import named_plan
from repro.twitter import add_simple_target, build_world

GOLDEN = pathlib.Path(__file__).parent / "golden" / "scenarios.json"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

SEED = 11
FAULT_SEED = 7
HANDLE = "chaostown"

#: Scenario name -> intensity factor.  The factors are tuned so the two
#: heavy scenarios measurably degrade every engine while "quiet" stays
#: within the paper engines' own error bars.
SCENARIO_FACTORS = {"quiet": 1.0, "bursty": 1.5, "truncation": 2.0}


def run_scenario(detector, scenario=None, factor=1.0):
    """Audit HANDLE with all four engines under one fault scenario."""
    plan = None
    if scenario is not None:
        plan = named_plan(scenario, seed=FAULT_SEED).scaled(factor)
    # 2400 followers leaves little cursor slack past Socialbakers'
    # 2000-id head, so truncated pages starve every engine's frame.
    world = build_world(seed=SEED, ref_time=PAPER_EPOCH)
    add_simple_target(world, HANDLE, 2_400, 0.3, 0.25, 0.45)
    clock = SimClock(world.ref_time)
    engines = build_engines(world, clock, detector, seed=SEED, faults=plan)
    reports = {tool: engines[tool].audit(AuditRequest(target=HANDLE)) for tool in ENGINE_ORDER}
    retries = {tool: engines[tool].client.retries_total
               for tool in ENGINE_ORDER}
    return reports, retries


@pytest.fixture(scope="module")
def sweep(detector):
    """Clean baseline plus one run per named scenario (expensive)."""
    runs = {"clean": run_scenario(detector)}
    for scenario, factor in SCENARIO_FACTORS.items():
        runs[scenario] = run_scenario(detector, scenario, factor)
    return runs


def digest(reports, retries):
    out = {}
    for tool in ENGINE_ORDER:
        report = reports[tool]
        out[tool] = {
            "fake_pct": round(report.fake_pct, 4),
            "genuine_pct": round(report.genuine_pct, 4),
            "inactive_pct": (None if report.inactive_pct is None
                             else round(report.inactive_pct, 4)),
            "completeness": round(report.completeness, 4),
            "errors_seen": report.errors_seen,
            "retries": retries[tool],
        }
    return out


class TestGracefulDegradation:
    @pytest.mark.parametrize("scenario", ["bursty", "truncation"])
    def test_heavy_scenarios_yield_partial_results(self, sweep, scenario):
        """Every engine degrades instead of raising under heavy faults."""
        reports, __ = sweep[scenario]
        for tool in ENGINE_ORDER:
            report = reports[tool]
            assert report.completeness < 1.0, tool
            assert report.completeness >= 0.0, tool
            assert report.errors_seen > 0, tool

    def test_heavy_scenarios_spend_retries(self, sweep):
        __, retries = sweep["bursty"]
        assert sum(retries.values()) > 0

    def test_quiet_scenario_barely_registers(self, sweep):
        reports, __ = sweep["quiet"]
        for tool in ENGINE_ORDER:
            assert reports[tool].completeness > 0.9, tool

    def test_clean_baseline_is_complete(self, sweep):
        reports, retries = sweep["clean"]
        for tool in ENGINE_ORDER:
            assert reports[tool].completeness == 1.0, tool
            assert reports[tool].errors_seen == 0, tool
        assert sum(retries.values()) == 0


class TestFcQuietInterval:
    def test_fc_estimate_stays_within_one_percent(self, sweep):
        """FC's 9604-sample estimate holds its ±1% interval when the
        weather is merely quiet (paper §V: 95% confidence, 1% error)."""
        clean = sweep["clean"][0]["fc"]
        quiet = sweep["quiet"][0]["fc"]
        assert abs(quiet.fake_pct - clean.fake_pct) <= 1.0


class TestGoldenDigest:
    def test_sweep_matches_golden(self, sweep):
        payload = json.dumps(
            {name: digest(*run) for name, run in sorted(sweep.items())},
            indent=2, sort_keys=True) + "\n"
        if UPDATE:
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(payload)
        assert GOLDEN.read_text() == payload
