"""Tests for the deterministic fault-injection and retry subsystem."""
