"""Determinism and safety properties of the fault/retry layer.

The contract under test (see ``docs/faults.md``): same seed + same
:class:`FaultPlan` + same request sequence ⇒ byte-identical
:class:`CallLog` records and byte-identical audit results; retries
never exceed the per-resource budget; backoff waits within one logical
request are monotone non-decreasing.
"""

import json

from repro.audit import AuditRequest
from repro.analytics import Twitteraudit
from repro.api import TwitterApiClient
from repro.core import PAPER_EPOCH, SimClock
from repro.core.errors import RetryableApiError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InjectorSpec,
    RetryPolicy,
    named_plan,
)
from repro.serde import audit_report_to_dict

HANDLE = "smalltown"


def drive(client: TwitterApiClient) -> None:
    """A fixed request sequence: profile, pages, lookups, a timeline."""
    try:
        client.users_show(screen_name=HANDLE)
    except RetryableApiError:
        pass
    ids = []
    cursor = -1
    for __ in range(4):
        try:
            page = client.followers_ids(screen_name=HANDLE, cursor=cursor)
        except RetryableApiError:
            break
        ids.extend(page.ids)
        if page.next_cursor == 0:
            break
        cursor = page.next_cursor
    for start in range(0, min(len(ids), 300), 100):
        try:
            client.users_lookup(ids[start:start + 100])
        except RetryableApiError:
            pass
    if ids:
        try:
            client.user_timeline(ids[0], count=50)
        except RetryableApiError:
            pass


class TestDeterminism:
    def make_client(self, world, plan):
        return TwitterApiClient(world, SimClock(PAPER_EPOCH), faults=plan)

    def test_same_seed_same_plan_identical_call_log(self, small_world):
        plan = named_plan("bursty", seed=21).scaled(2.0)
        logs = []
        for __ in range(2):
            client = self.make_client(small_world, plan)
            drive(client)
            logs.append(client.call_log.calls())
        assert logs[0] == logs[1]
        # Byte-identical, not merely equal.
        assert repr(logs[0]) == repr(logs[1])
        # The sequence is non-trivial: the plan actually injected faults.
        assert any(not call.ok for call in logs[0])

    def test_different_fault_seed_changes_the_weather(self):
        plan = FaultPlan(seed=1, injectors=(
            InjectorSpec("transient_503", 0.5),))

        def decisions(p):
            injector = FaultInjector(p)
            return [injector.decide("r", float(t)) is not None
                    for t in range(200)]

        assert decisions(plan) == decisions(plan)
        assert decisions(plan) != decisions(plan.with_seed(2))

    def test_same_seed_identical_audit_result_bytes(self, small_world):
        plan = named_plan("truncation", seed=5)
        payloads = []
        for __ in range(2):
            engine = Twitteraudit(small_world, SimClock(PAPER_EPOCH),
                                  seed=3, faults=plan)
            report = engine.audit(AuditRequest(target=HANDLE))
            payloads.append(json.dumps(audit_report_to_dict(report),
                                       sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_faults_off_injects_nothing(self, small_world):
        client = self.make_client(small_world, None)
        drive(client)
        assert client.faults_seen == 0
        assert client.retries_total == 0
        assert all(call.ok for call in client.call_log.calls())


class TestRetrySafety:
    def always_failing_client(self, world, budget: int, max_attempts: int):
        plan = FaultPlan(seed=1, injectors=(
            InjectorSpec("transient_503", 1.0),))
        policy = RetryPolicy(budget_per_resource=budget,
                             max_attempts=max_attempts, jitter=0.25)
        return TwitterApiClient(world, SimClock(PAPER_EPOCH),
                                faults=plan, retry=policy)

    def test_retries_never_exceed_budget(self, small_world):
        client = self.always_failing_client(small_world, budget=5,
                                            max_attempts=4)
        for __ in range(3):
            try:
                client.users_show(screen_name=HANDLE)
            except RetryableApiError:
                pass
        # Request 1: 3 retries (max_attempts), request 2: the 2 budget
        # retries left, request 3: none — the budget is a hard cap.
        assert client.retries_total == 5
        assert client.call_log.failures() == 8

    def test_budget_refills_on_reset(self, small_world):
        client = self.always_failing_client(small_world, budget=3,
                                            max_attempts=4)
        try:
            client.users_show(screen_name=HANDLE)
        except RetryableApiError:
            pass
        assert client.retries_total == 3
        client.reset_budgets()
        try:
            client.users_show(screen_name=HANDLE)
        except RetryableApiError:
            pass
        assert client.retries_total == 6

    def test_backoff_waits_monotone_within_request(self, small_world):
        """Clock gaps between an attempt's failures never shrink."""
        client = self.always_failing_client(small_world, budget=10,
                                            max_attempts=6)
        try:
            client.users_show(screen_name=HANDLE)
        except RetryableApiError:
            pass
        failures = [call for call in client.call_log.calls()
                    if not call.ok]
        assert len(failures) == 6  # 1 try + 5 retries
        gaps = [
            round(nxt.issued_at - prev.completed_at, 9)
            for prev, nxt in zip(failures, failures[1:])
        ]
        assert all(gap > 0 for gap in gaps)
        assert gaps == sorted(gaps)
