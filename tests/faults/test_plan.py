"""Unit tests for fault plans, injector specs and burst schedules."""

import pytest

from repro.core import ConfigurationError
from repro.faults import (
    BurstSchedule,
    FaultPlan,
    INJECTOR_KINDS,
    InjectorSpec,
    RAISING_KINDS,
    SCENARIOS,
    named_plan,
)


class TestBurstSchedule:
    def test_active_windows_repeat(self):
        burst = BurstSchedule(period=300.0, duration=120.0, multiplier=10.0)
        assert burst.active(0.0)
        assert burst.active(119.9)
        assert not burst.active(120.0)
        assert not burst.active(299.9)
        assert burst.active(300.0)  # next period

    def test_phase_shifts_the_window(self):
        burst = BurstSchedule(period=100.0, duration=10.0,
                              multiplier=2.0, phase=50.0)
        assert not burst.active(0.0)
        assert burst.active(55.0)

    def test_factor(self):
        burst = BurstSchedule(period=100.0, duration=10.0, multiplier=7.0)
        assert burst.factor(5.0) == 7.0
        assert burst.factor(50.0) == 1.0

    @pytest.mark.parametrize("kwargs", [
        {"period": 0.0, "duration": 1.0, "multiplier": 2.0},
        {"period": 10.0, "duration": 0.0, "multiplier": 2.0},
        {"period": 10.0, "duration": 11.0, "multiplier": 2.0},
        {"period": 10.0, "duration": 5.0, "multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BurstSchedule(**kwargs)


class TestInjectorSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            InjectorSpec("explode", 0.1)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            InjectorSpec("timeout", 1.5)
        with pytest.raises(ConfigurationError):
            InjectorSpec("timeout", -0.1)

    def test_applies_to(self):
        spec = InjectorSpec("transient_503", 0.1,
                            resources=("users/lookup",))
        assert spec.applies_to("users/lookup")
        assert not spec.applies_to("followers/ids")
        assert InjectorSpec("transient_503", 0.1).applies_to("anything")

    def test_probability_at_uses_burst(self):
        spec = InjectorSpec(
            "transient_503", 0.05,
            burst=BurstSchedule(period=100.0, duration=10.0, multiplier=4.0))
        assert spec.probability_at(5.0) == pytest.approx(0.2)
        assert spec.probability_at(50.0) == pytest.approx(0.05)

    def test_probability_at_caps_at_one(self):
        spec = InjectorSpec(
            "transient_503", 0.5,
            burst=BurstSchedule(period=10.0, duration=5.0, multiplier=100.0))
        assert spec.probability_at(1.0) == 1.0


class TestFaultPlan:
    def test_scaled_multiplies_and_caps(self):
        plan = FaultPlan(injectors=(
            InjectorSpec("transient_503", 0.2),
            InjectorSpec("timeout", 0.8),
        ))
        scaled = plan.scaled(2.0)
        assert scaled.injectors[0].probability == pytest.approx(0.4)
        assert scaled.injectors[1].probability == 1.0
        assert scaled.seed == plan.seed

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(injectors=()).scaled(-1.0)

    def test_with_seed(self):
        plan = named_plan("quiet", seed=3)
        assert plan.with_seed(9).seed == 9
        assert plan.with_seed(9).injectors == plan.injectors

    def test_kind_partition(self):
        assert set(RAISING_KINDS) | {"truncated_ids_page"} == \
            set(INJECTOR_KINDS)


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_named_plans_build(self, name):
        plan = named_plan(name, seed=123)
        assert plan.seed == 123
        assert plan.injectors
        for spec in plan.injectors:
            assert spec.kind in INJECTOR_KINDS

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            named_plan("hurricane")
