"""Unit tests for the burst detector."""

import pytest

from repro.core import ConfigurationError
from repro.growth import BurstDetector, GrowthSeries


def series(values):
    return GrowthSeries(start_time=0.0, arrivals=tuple(values))


class TestBurstDetector:
    def test_flat_series_no_bursts(self):
        detector = BurstDetector()
        assert detector.detect(series([100] * 20)) == []

    def test_noisy_series_no_false_positives(self):
        values = [95, 103, 99, 108, 92, 101, 97, 104, 100, 96,
                  105, 98, 102, 94, 107]
        assert BurstDetector().detect(series(values)) == []

    def test_single_burst_detected(self):
        values = [100] * 10 + [5100] + [100] * 10
        events = BurstDetector().detect(series(values))
        assert len(events) == 1
        event = events[0]
        assert event.day == 10
        assert event.arrivals == 5100
        assert event.excess == pytest.approx(5000.0)
        assert event.z_score > 6.0

    def test_two_bursts_sorted_by_strength(self):
        values = [100] * 8 + [2100] + [100] * 8 + [9100] + [100] * 8
        events = BurstDetector().detect(series(values))
        assert [event.arrivals for event in events] == [9100, 2100]

    def test_min_excess_guards_small_accounts(self):
        # 10 -> 40 is six "sigma" on a quiet account but only 30 heads.
        values = [10] * 12 + [40] + [10] * 12
        assert BurstDetector(min_excess=50).detect(series(values)) == []
        assert BurstDetector(min_excess=10).detect(series(values)) != []

    def test_zero_variance_baseline_fallback(self):
        values = [0] * 12 + [800] + [0] * 12
        events = BurstDetector().detect(series(values))
        assert len(events) == 1

    def test_purchase_estimate(self):
        values = [100] * 10 + [10_100] + [100] * 10
        estimate = BurstDetector().purchased_follower_estimate(series(values))
        assert estimate == pytest.approx(10_000, abs=200)

    def test_needs_history(self):
        with pytest.raises(ConfigurationError):
            BurstDetector().detect(series([1, 2, 3]))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BurstDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            BurstDetector(min_excess=-1)

    def test_baseline_robust_to_the_burst_itself(self):
        """The burst must not drag its own baseline up (median, not mean)."""
        detector = BurstDetector()
        clean = detector.baseline(series([100] * 20))
        with_burst = detector.baseline(series([100] * 19 + [100_000]))
        assert with_burst[0] == clean[0] == 100.0
