"""Unit tests for growth-series construction."""

import pytest

from repro.core import ConfigurationError, DAY, PAPER_EPOCH
from repro.growth import (
    GrowthSeries,
    series_from_observations,
    series_from_population,
)
from repro.twitter import add_simple_target, build_world


class TestGrowthSeries:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GrowthSeries(start_time=0.0, arrivals=())
        with pytest.raises(ConfigurationError):
            GrowthSeries(start_time=0.0, arrivals=(1, -1))

    def test_day_start(self):
        series = GrowthSeries(start_time=100.0, arrivals=(1, 2, 3))
        assert series.day_start(0) == 100.0
        assert series.day_start(2) == 100.0 + 2 * DAY
        with pytest.raises(ConfigurationError):
            series.day_start(3)

    def test_total_and_len(self):
        series = GrowthSeries(start_time=0.0, arrivals=(5, 7))
        assert len(series) == 2
        assert series.total() == 12


class TestFromPopulation:
    def test_trickle_counts_match_schedule(self, small_world):
        population = small_world.population("smalltown")
        series = series_from_population(population, PAPER_EPOCH, days=5)
        assert len(series) == 5
        # smalltown grows by 50/day post-reference.
        assert all(count == 50 for count in series.arrivals)

    def test_days_validated(self, small_world):
        population = small_world.population("smalltown")
        with pytest.raises(ConfigurationError):
            series_from_population(population, PAPER_EPOCH, days=0)

    def test_historical_burst_visible(self):
        world = build_world(seed=44)
        add_simple_target(
            world, "bursty", 30_000, 0.2, 0.2, 0.6,
            fake_burst_fraction=1.0, fake_burst_position=0.99,
            created_years_before=1.0)
        population = world.population("bursty")
        # Observe the 30 days leading up to the reference instant: the
        # burst (1% of the window before ref ~ 3.7 days back) is inside.
        series = series_from_population(
            population, PAPER_EPOCH - 30 * DAY, days=30)
        assert max(series.arrivals) > 10 * sorted(series.arrivals)[15]


class TestFromObservations:
    def test_deltas(self):
        series = series_from_observations(
            [(0.0, 100), (DAY, 130), (2 * DAY, 130), (3 * DAY, 190)])
        assert series.arrivals == (30, 0, 60)
        assert series.start_time == 0.0

    def test_needs_two_readings(self):
        with pytest.raises(ConfigurationError):
            series_from_observations([(0.0, 10)])

    def test_chronological_required(self):
        with pytest.raises(ConfigurationError):
            series_from_observations([(DAY, 10), (0.0, 20)])
        with pytest.raises(ConfigurationError):
            series_from_observations([(0.0, 10), (0.0, 20)])

    def test_decreasing_counts_clip_to_zero_by_default(self):
        series = series_from_observations(
            [(0.0, 100), (DAY, 90), (2 * DAY, 150)])
        assert series.arrivals == (0, 60)

    def test_strict_mode_rejects_decreases(self):
        with pytest.raises(ConfigurationError):
            series_from_observations(
                [(0.0, 100), (DAY, 90)], clip_negative=False)
