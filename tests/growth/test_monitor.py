"""Integration tests for the API-driven growth monitor."""

import pytest

from repro.core import ConfigurationError, DAY, PAPER_EPOCH, SimClock
from repro.growth import BurstDetector, GrowthMonitor
from repro.twitter import add_simple_target, build_world


def romney_world(seed=46):
    """A target whose purchased block lands ~4 days before ref time."""
    world = build_world(seed=seed)
    add_simple_target(
        world, "challenger", 60_000, 0.1, 0.25, 0.65,
        fake_burst_fraction=0.9, fake_burst_position=0.99,
        created_years_before=1.0, daily_new_followers=120)
    return world


class TestGrowthMonitor:
    def test_detects_the_romney_jump(self):
        world = romney_world()
        clock = SimClock(PAPER_EPOCH - 20 * DAY)
        monitor = GrowthMonitor(world, clock)
        report = monitor.watch("challenger", days=20)
        assert report.suspicious
        assert report.purchased_estimate > 8000
        # The jump sits days, not weeks, before the reference instant.
        strongest = report.bursts[0]
        assert PAPER_EPOCH - 8 * DAY <= strongest.start_time <= PAPER_EPOCH

    def test_quiet_account_not_flagged(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        monitor = GrowthMonitor(small_world, clock)
        report = monitor.watch("smalltown", days=10)
        assert not report.suspicious
        assert report.purchased_estimate == 0

    def test_cheap_api_usage(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        monitor = GrowthMonitor(small_world, clock)
        monitor.watch("smalltown", days=10)
        log = monitor.client.call_log
        assert log.count("users/lookup") == 11  # one users/show per day
        assert log.count("followers/ids") == 0  # never crawls followers

    def test_observation_cadence_is_daily(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        monitor = GrowthMonitor(small_world, clock)
        series = monitor.observe("smalltown", days=5)
        assert len(series) == 5
        assert series.arrivals == (50,) * 5  # smalltown's trickle rate

    def test_custom_detector_respected(self):
        world = romney_world()
        clock = SimClock(PAPER_EPOCH - 20 * DAY)
        paranoid = GrowthMonitor(
            world, clock, detector=BurstDetector(threshold=1e9))
        report = paranoid.watch("challenger", days=20)
        assert not report.suspicious  # impossible threshold: silence

    def test_days_validated(self, small_world):
        monitor = GrowthMonitor(small_world, SimClock(PAPER_EPOCH))
        with pytest.raises(ConfigurationError):
            monitor.observe("smalltown", days=0)


class TestPoll:
    def test_single_reading_at_the_current_instant(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        monitor = GrowthMonitor(small_world, clock)
        at, count = monitor.poll("smalltown")
        assert at == PAPER_EPOCH  # stamped before the call's latency
        assert count == small_world.account_by_name(
            "smalltown", PAPER_EPOCH).followers_count
        assert clock.now() > PAPER_EPOCH  # one users/show was charged
        assert monitor.client.call_log.count("users/lookup") == 1

    def test_feeds_the_live_telemetry_follower_stream(self, small_world):
        from repro.obs import Observability, observed
        from repro.obs.live import DetectorBridge, LiveTelemetry

        clock = SimClock(PAPER_EPOCH)
        obs = Observability(SimClock(PAPER_EPOCH))
        live = LiveTelemetry(origin=PAPER_EPOCH, pane_width=DAY)
        live.attach_bridge(DetectorBridge(live.alerts, origin=PAPER_EPOCH))
        obs.attach_live(live)
        with observed(obs):
            monitor = GrowthMonitor(small_world, clock)
            at, count = monitor.poll("smalltown")
        stream = live.bridge.stream("smalltown")
        assert stream.latest().last == float(count)
        assert stream.latest().count == 1


class TestPollFleet:
    HANDLES = tuple(f"fleet_{i}" for i in range(120))

    @pytest.fixture(scope="class")
    def fleet_world(self):
        world = build_world(seed=9)
        for index, handle in enumerate(self.HANDLES):
            add_simple_target(world, handle, 3 + index % 5, 0.2, 0.2, 0.6)
        return world

    def test_batched_counts_match_individual_polls(self, fleet_world):
        fleet = GrowthMonitor(fleet_world, SimClock(PAPER_EPOCH))
        fleet.poll_fleet(self.HANDLES)  # first sweep resolves user ids
        counts = fleet.poll_fleet(self.HANDLES)
        solo = GrowthMonitor(fleet_world, SimClock(PAPER_EPOCH))
        assert counts == {handle: solo.poll(handle)[1]
                          for handle in self.HANDLES}

    def test_resolved_sweep_uses_paged_lookups(self, fleet_world):
        monitor = GrowthMonitor(fleet_world, SimClock(PAPER_EPOCH))
        monitor.poll_fleet(self.HANDLES)
        log = monitor.client.call_log
        before = log.count("users/lookup")
        counts = monitor.poll_fleet(self.HANDLES)
        # ceil(120 / 100) pages for the whole resolved fleet — not one
        # users/show per account per tick.
        assert log.count("users/lookup") - before == 2
        assert len(counts) == len(self.HANDLES)

    def test_total_outage_returns_empty_without_raising(self, fleet_world):
        from repro.faults.plan import FaultPlan, InjectorSpec

        plan = FaultPlan(injectors=(InjectorSpec(
            kind="transient_503", probability=1.0,
            resources=("users/lookup",)),), seed=3)
        monitor = GrowthMonitor(fleet_world, SimClock(PAPER_EPOCH),
                                faults=plan)
        assert monitor.poll_fleet(self.HANDLES) == {}

    def test_faulted_page_loses_only_its_page(self, fleet_world, monkeypatch):
        from repro.core import RetryableApiError

        monitor = GrowthMonitor(fleet_world, SimClock(PAPER_EPOCH))
        monitor.poll_fleet(self.HANDLES)
        original = monitor.client.users_lookup_block
        pages = []

        def flaky(ids):
            pages.append(len(ids))
            if len(pages) == 1:
                raise RetryableApiError("injected page loss")
            return original(ids)

        monkeypatch.setattr(monitor.client, "users_lookup_block", flaky)
        counts = monitor.poll_fleet(self.HANDLES)
        assert pages == [100, 20]
        assert set(counts) == set(self.HANDLES[100:])
