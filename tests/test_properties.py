"""Cross-module property-based tests.

These exercise whole-pipeline invariants with hypothesis-generated
configurations: arbitrary compositions, arbitrary page sizes, arbitrary
burst placements.  Each property is something an engine or experiment
silently relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analytics.base import percentages
from repro.api import TwitterApiClient
from repro.core import PAPER_EPOCH, SimClock
from repro.twitter import (
    Label,
    SyntheticWorld,
    build_world,
    make_target_spec,
)

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

compositions = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.05, max_value=1.0),
).filter(lambda parts: sum(parts) > 0.2)


class TestPopulationProperties:
    @given(composition=compositions, seed=st.integers(0, 10_000))
    @settings(**_SETTINGS)
    def test_composition_matches_any_spec(self, composition, seed):
        """Ground-truth label shares track the declared composition."""
        inactive, fake, genuine = composition
        total = inactive + fake + genuine
        world = build_world(seed=seed)
        spec = make_target_spec("prop", 3000, inactive, fake, genuine,
                                ref_time=world.ref_time)
        population = world.add_target(spec)
        measured = population.composition(PAPER_EPOCH)
        assert measured[Label.INACTIVE] == pytest.approx(
            inactive / total, abs=0.06)
        assert measured[Label.FAKE] == pytest.approx(
            fake / total, abs=0.06)
        assert measured[Label.GENUINE] == pytest.approx(
            genuine / total, abs=0.06)

    @given(
        composition=compositions,
        burst=st.floats(min_value=0.0, max_value=1.0),
        position=st.floats(min_value=0.0, max_value=1.0),
        tilt=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(**_SETTINGS)
    def test_burst_and_tilt_never_change_totals(self, composition, burst,
                                                position, tilt):
        """However the arrival order is shaped, totals are invariant."""
        inactive, fake, genuine = composition
        total = inactive + fake + genuine
        world = build_world(seed=77)
        spec = make_target_spec(
            "shaped", 2500, inactive, fake, genuine,
            fake_burst_fraction=burst, fake_burst_position=position,
            tilt=tilt, ref_time=world.ref_time)
        population = world.add_target(spec)
        measured = population.composition(PAPER_EPOCH)
        assert measured[Label.FAKE] == pytest.approx(
            fake / total, abs=0.06)

    @given(seed=st.integers(0, 10_000))
    @settings(**_SETTINGS)
    def test_arrival_times_always_sorted(self, seed):
        world = build_world(seed=seed)
        spec = make_target_spec("sorted", 2000, 0.3, 0.3, 0.4,
                                fake_burst_fraction=0.5,
                                ref_time=world.ref_time)
        population = world.add_target(spec)
        times = [population.followed_at(p) for p in range(0, 2000, 37)]
        assert times == sorted(times)


class TestApiProperties:
    @given(
        followers=st.integers(min_value=1, max_value=20_000),
        page=st.integers(min_value=1, max_value=5000),
    )
    @settings(**_SETTINGS)
    def test_pagination_partitions_exactly(self, followers, page):
        """Any page size yields every follower exactly once, in order."""
        world = SyntheticWorld(seed=3, ref_time=PAPER_EPOCH)
        spec = make_target_spec("paged", followers, 0.2, 0.2, 0.6,
                                ref_time=PAPER_EPOCH)
        population = world.add_target(spec)
        client = TwitterApiClient(world, SimClock(PAPER_EPOCH),
                                  request_latency=0.0)
        collected = []
        cursor = -1
        while True:
            result = client.followers_ids(
                screen_name="paged", cursor=cursor, count=page)
            collected.extend(result.ids)
            if result.next_cursor == 0:
                break
            cursor = result.next_cursor
        assert len(collected) == followers
        assert len(set(collected)) == followers
        assert collected[0] == population.follower_id_at(followers - 1)
        assert collected[-1] == population.follower_id_at(0)


class TestReportingProperties:
    @given(counts=st.lists(st.integers(min_value=0, max_value=10_000),
                           min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_percentages_always_sum_to_100(self, counts):
        total = sum(counts)
        if total == 0:
            return
        keyed = {f"class{i}": value for i, value in enumerate(counts)}
        rendered = percentages(keyed, total)
        assert sum(rendered.values()) == pytest.approx(100.0, abs=0.05)
        assert all(value >= -1e-9 for value in rendered.values())
