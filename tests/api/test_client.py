"""Unit tests for the simulated REST client."""

import pytest

from repro.api import TwitterApiClient
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.core.errors import InvalidCursorError


@pytest.fixture
def client(small_world):
    return TwitterApiClient(small_world, SimClock(PAPER_EPOCH))


class TestConstruction:
    def test_invalid_parallelism(self, small_world):
        with pytest.raises(ConfigurationError):
            TwitterApiClient(small_world, SimClock(), parallelism=0)

    def test_negative_latency(self, small_world):
        with pytest.raises(ConfigurationError):
            TwitterApiClient(small_world, SimClock(), request_latency=-1)


class TestUsersShow:
    def test_by_screen_name(self, client):
        user = client.users_show(screen_name="smalltown")
        assert user.screen_name == "smalltown"
        assert user.followers_count == 12_000

    def test_by_user_id(self, client, small_world):
        uid = small_world.account_by_name(
            "smalltown", PAPER_EPOCH).user_id
        assert client.users_show(user_id=uid).screen_name == "smalltown"

    def test_exactly_one_identifier(self, client):
        with pytest.raises(ConfigurationError):
            client.users_show()
        with pytest.raises(ConfigurationError):
            client.users_show(screen_name="x", user_id=1)

    def test_charged_against_lookup_budget(self, client):
        client.users_show(screen_name="smalltown")
        assert client.call_log.count("users/lookup") == 1


class TestFollowersIds:
    def test_first_page_is_newest(self, client, small_world):
        page = client.followers_ids(screen_name="smalltown")
        population = small_world.population("smalltown")
        newest = population.follower_id_at(11_999)
        assert page.ids[0] == newest
        assert len(page.ids) == 5000

    def test_pagination_covers_everything_once(self, client, small_world):
        collected = []
        cursor = -1
        while True:
            page = client.followers_ids(screen_name="smalltown", cursor=cursor)
            collected.extend(page.ids)
            if page.next_cursor == 0:
                break
            cursor = page.next_cursor
        assert len(collected) == 12_000
        assert len(set(collected)) == 12_000
        population = small_world.population("smalltown")
        assert collected[-1] == population.follower_id_at(0)

    def test_newest_first_within_and_across_pages(self, client, small_world):
        population = small_world.population("smalltown")
        first = client.followers_ids(screen_name="smalltown")
        second = client.followers_ids(
            screen_name="smalltown", cursor=first.next_cursor)
        positions = [
            population.schedule.arrival_time(
                _decode_position(uid)) for uid in
            list(first.ids[:3]) + list(second.ids[:3])
        ]
        assert positions == sorted(positions, reverse=True)

    def test_custom_count(self, client):
        page = client.followers_ids(screen_name="smalltown", count=10)
        assert len(page.ids) == 10
        assert page.next_cursor == 10

    def test_count_out_of_range(self, client):
        with pytest.raises(ConfigurationError):
            client.followers_ids(screen_name="smalltown", count=5001)
        with pytest.raises(ConfigurationError):
            client.followers_ids(screen_name="smalltown", count=0)

    def test_bad_cursor(self, client):
        with pytest.raises(InvalidCursorError):
            client.followers_ids(screen_name="smalltown", cursor=-2)

    def test_previous_cursor_convention(self, client):
        first = client.followers_ids(screen_name="smalltown")
        assert first.previous_cursor == 0
        second = client.followers_ids(
            screen_name="smalltown", cursor=first.next_cursor)
        assert second.previous_cursor == -5000


class TestUsersLookup:
    def test_batch_of_100(self, client, small_world):
        population = small_world.population("smalltown")
        ids = [population.follower_id_at(p) for p in range(100)]
        users = client.users_lookup(ids)
        assert len(users) == 100

    def test_unknown_ids_silently_dropped(self, client, small_world):
        population = small_world.population("smalltown")
        ids = [population.follower_id_at(0), 999_999_999]
        users = client.users_lookup(ids)
        assert len(users) == 1

    def test_batch_size_enforced(self, client):
        with pytest.raises(ConfigurationError):
            client.users_lookup(list(range(101)))
        with pytest.raises(ConfigurationError):
            client.users_lookup([])


class TestTimeline:
    def test_returns_newest_first(self, client, small_world):
        population = small_world.population("smalltown")
        uid = next(
            population.follower_id_at(p) for p in range(100)
            if population.account_at(p, PAPER_EPOCH).statuses_count > 10)
        tweets = client.user_timeline(uid, count=10)
        times = [t.created_at for t in tweets]
        assert times == sorted(times, reverse=True)

    def test_count_cap(self, client):
        with pytest.raises(ConfigurationError):
            client.user_timeline(1, count=201)


class TestTiming:
    def test_latency_charged_per_request(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        client = TwitterApiClient(small_world, clock, request_latency=2.0)
        client.users_show(screen_name="smalltown")
        assert clock.now() == PAPER_EPOCH + 2.0

    def test_parallelism_divides_latency(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        client = TwitterApiClient(
            small_world, clock, request_latency=2.0, parallelism=4)
        client.users_show(screen_name="smalltown")
        assert clock.now() == PAPER_EPOCH + 0.5

    def test_rate_limit_wait_advances_clock(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        client = TwitterApiClient(small_world, clock, request_latency=0.0)
        for _ in range(16):  # budget is 15 per window
            client.followers_ids(screen_name="smalltown", count=1)
        assert clock.now() > PAPER_EPOCH + 50.0

    def test_reset_budgets_clears_starvation(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        client = TwitterApiClient(small_world, clock, request_latency=0.0)
        for _ in range(15):
            client.followers_ids(screen_name="smalltown", count=1)
        client.reset_budgets()
        before = clock.now()
        client.followers_ids(screen_name="smalltown", count=1)
        assert clock.now() == before  # no wait after reset


def _decode_position(uid):
    from repro.twitter import decode_follower
    return decode_follower(uid)[1]
