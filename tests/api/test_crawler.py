"""Unit tests for the high-level crawler and the acquisition model."""

import pytest

from repro.api import Crawler, TwitterApiClient, estimate_acquisition_time
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, SimClock


@pytest.fixture
def crawler(small_world):
    return Crawler(TwitterApiClient(small_world, SimClock(PAPER_EPOCH)))


class TestFetching:
    def test_fetch_all_follower_ids(self, crawler, small_world):
        ids = crawler.fetch_all_follower_ids("smalltown")
        assert len(ids) == 12_000
        population = small_world.population("smalltown")
        assert ids[0] == population.follower_id_at(11_999)
        assert ids[-1] == population.follower_id_at(0)

    def test_fetch_newest_head(self, crawler, small_world):
        ids = crawler.fetch_newest_follower_ids("smalltown", max_ids=700)
        assert len(ids) == 700
        population = small_world.population("smalltown")
        expected = {population.follower_id_at(p)
                    for p in range(11_300, 12_000)}
        assert set(ids) == expected

    def test_head_larger_than_base_returns_all(self, crawler):
        ids = crawler.fetch_newest_follower_ids("smalltown", max_ids=50_000)
        assert len(ids) == 12_000

    def test_invalid_max_ids(self, crawler):
        with pytest.raises(ConfigurationError):
            crawler.fetch_newest_follower_ids("smalltown", max_ids=0)

    def test_lookup_users_batches(self, crawler, small_world):
        population = small_world.population("smalltown")
        ids = [population.follower_id_at(p) for p in range(250)]
        users = crawler.lookup_users(ids)
        assert len(users) == 250
        assert crawler.client.call_log.count("users/lookup") == 3

    def test_lookup_users_empty(self, crawler):
        assert crawler.lookup_users([]) == []

    def test_fetch_timelines(self, crawler, small_world):
        population = small_world.population("smalltown")
        ids = [population.follower_id_at(p) for p in range(5)]
        timelines = crawler.fetch_timelines(ids, per_user=20)
        assert set(timelines) == set(ids)
        assert crawler.client.call_log.count("statuses/user_timeline") == 5


class TestAcquisitionEstimate:
    def test_obama_takes_weeks(self):
        estimate = estimate_acquisition_time(41_000_000)
        assert estimate.follower_pages == 8200
        assert estimate.lookup_requests == 410_000
        # The paper reports "around 27 days"; the model lands within a
        # few days of that (id paging ~5.7d + lookups ~23.7d).
        assert 25 <= estimate.days <= 32

    def test_ids_only_crawl_days(self):
        estimate = estimate_acquisition_time(41_000_000, lookup_all=False)
        assert 5.0 <= estimate.days <= 6.5

    def test_timelines_dominate_when_included(self):
        with_timelines = estimate_acquisition_time(
            100_000, timelines_all=True)
        without = estimate_acquisition_time(100_000)
        assert with_timelines.seconds > 5 * without.seconds
        assert with_timelines.timeline_requests == 100_000

    def test_small_crawl_latency_bound(self):
        estimate = estimate_acquisition_time(5000, latency=2.0)
        # 1 page + 50 lookups, all within burst: 51 requests * 2 s.
        assert estimate.seconds == pytest.approx(102.0, abs=5.0)

    def test_zero_followers(self):
        estimate = estimate_acquisition_time(0)
        assert estimate.seconds == 0.0
        assert estimate.follower_pages == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_acquisition_time(-1)

    def test_credentials_speed_up(self):
        single = estimate_acquisition_time(41_000_000)
        fleet = estimate_acquisition_time(41_000_000, credentials=10)
        assert fleet.seconds < single.seconds / 2

    def test_matches_simulated_crawl(self, small_world):
        """The closed form agrees with an actual simulated crawl."""
        clock = SimClock(PAPER_EPOCH)
        crawler = Crawler(TwitterApiClient(small_world, clock))
        start = clock.now()
        ids = crawler.fetch_all_follower_ids("smalltown")
        crawler.lookup_users(ids)
        measured = clock.now() - start
        predicted = estimate_acquisition_time(12_000).seconds
        assert measured == pytest.approx(predicted, rel=0.05)
