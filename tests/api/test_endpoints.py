"""Unit tests for wire objects and the call log."""

from repro.api import ApiCall, CallLog, IdsPage, UserObject
from repro.core import DAY, PAPER_EPOCH, YEAR
from repro.twitter import Account, Label


def make_account():
    return Account(
        user_id=7,
        screen_name="alice",
        created_at=PAPER_EPOCH - YEAR,
        description="hello",
        location="Pisa",
        followers_count=10,
        friends_count=300,
        statuses_count=4,
        last_tweet_at=PAPER_EPOCH - 5 * DAY,
        true_label=Label.GENUINE,
    )


class TestUserObject:
    def test_projection_carries_observables(self):
        user = UserObject.from_account(make_account())
        assert user.user_id == 7
        assert user.followers_count == 10
        assert user.last_status_at == PAPER_EPOCH - 5 * DAY

    def test_projection_strips_ground_truth(self):
        user = UserObject.from_account(make_account())
        assert not hasattr(user, "true_label")
        assert not hasattr(user, "behavior")

    def test_derived_observables(self):
        user = UserObject.from_account(make_account())
        assert user.friends_followers_ratio() == 30.0
        assert user.has_bio()
        assert user.has_location()
        assert user.has_ever_tweeted()
        assert user.age_at(PAPER_EPOCH) == YEAR
        assert user.last_status_age(PAPER_EPOCH) == 5 * DAY

    def test_never_tweeted_age_is_none(self):
        account = Account(
            user_id=8, screen_name="silent",
            created_at=PAPER_EPOCH - YEAR, statuses_count=0)
        user = UserObject.from_account(account)
        assert user.last_status_age(PAPER_EPOCH) is None


class TestIdsPage:
    def test_len(self):
        page = IdsPage(ids=(1, 2, 3), next_cursor=0, previous_cursor=0)
        assert len(page) == 3


class TestCallLog:
    def test_counts_by_resource(self):
        log = CallLog()
        log.record(ApiCall("users/lookup", 0.0, 1.0, 0.0, 100))
        log.record(ApiCall("users/lookup", 1.0, 2.0, 0.5, 50))
        log.record(ApiCall("followers/ids", 2.0, 3.0, 0.0, 0))
        assert log.count() == 3
        assert log.count("users/lookup") == 2
        assert log.total_items("users/lookup") == 150
        assert log.total_waited() == 0.5

    def test_latency(self):
        call = ApiCall("x", 10.0, 12.5, 1.0, 0)
        assert call.latency == 2.5

    def test_clear(self):
        log = CallLog()
        log.record(ApiCall("x", 0.0, 1.0, 0.0, 0))
        log.clear()
        assert log.count() == 0

    def test_summary_aggregates_per_resource(self):
        log = CallLog()
        log.record(ApiCall("users/lookup", 0.0, 1.0, 0.0, 100))
        log.record(ApiCall("users/lookup", 1.0, 3.0, 0.5, 50))
        log.record(ApiCall("followers/ids", 3.0, 4.0, 0.25, 0))
        summary = log.summary()
        assert list(summary) == ["followers/ids", "users/lookup"]  # sorted
        assert summary["users/lookup"] == {
            "calls": 2, "items": 150, "waited": 0.5, "total_latency": 3.0,
            "failures": 0}
        assert summary["followers/ids"]["calls"] == 1
        assert summary["followers/ids"]["waited"] == 0.25

    def test_summary_empty_log(self):
        assert CallLog().summary() == {}

    def test_call_ok_flag(self):
        assert ApiCall("x", 0.0, 1.0, 0.0, 5).ok
        assert not ApiCall("x", 0.0, 1.0, 0.0, 0, error="timeout").ok

    def test_failures_counted_per_resource(self):
        log = CallLog()
        log.record(ApiCall("users/lookup", 0.0, 1.0, 0.0, 100))
        log.record(ApiCall("users/lookup", 1.0, 2.0, 0.0, 0,
                           error="transient_503"))
        log.record(ApiCall("followers/ids", 2.0, 3.0, 0.0, 0,
                           error="timeout"))
        assert log.failures() == 2
        assert log.failures("users/lookup") == 1
        assert log.failures("followers/ids") == 1
        assert log.count("users/lookup") == 2  # attempts, incl. failed

    def test_summary_mixed_success_failure(self):
        """Failed attempts must not pollute per-resource latency stats."""
        log = CallLog()
        log.record(ApiCall("users/lookup", 0.0, 2.0, 0.0, 100))
        # A slow, waited-on failure: none of its numbers may leak into
        # the success aggregates.
        log.record(ApiCall("users/lookup", 2.0, 42.0, 7.0, 0,
                           error="transient_503"))
        log.record(ApiCall("users/lookup", 42.0, 44.0, 0.0, 100))
        summary = log.summary()
        stats = summary["users/lookup"]
        assert stats["calls"] == 2
        assert stats["failures"] == 1
        assert stats["items"] == 200
        assert stats["waited"] == 0.0
        assert stats["total_latency"] == 4.0
        # Mean latency of *successful* calls stays 2 s despite the 40 s
        # failed attempt in between.
        assert stats["total_latency"] / stats["calls"] == 2.0

    def test_summary_failures_only_resource(self):
        log = CallLog()
        log.record(ApiCall("statuses/user_timeline", 0.0, 1.0, 0.0, 0,
                           error="rate_limit_spike"))
        stats = log.summary()["statuses/user_timeline"]
        assert stats == {"calls": 0, "items": 0, "waited": 0.0,
                         "total_latency": 0.0, "failures": 1}


class TestCallLogIncrementalAggregation:
    """The O(1) aggregates must equal a from-scratch rescan, always."""

    def _mixed_log(self):
        log = CallLog()
        log.record(ApiCall("users/lookup", 0.0, 2.0, 0.5, 100))
        log.record(ApiCall("users/lookup", 2.0, 42.0, 7.0, 3,
                           error="transient_503"))
        log.record(ApiCall("followers/ids", 42.0, 44.0, 0.25, 5000))
        log.record(ApiCall("followers/ids", 44.0, 45.0, 0.0, 0,
                           error="rate_limit_spike"))
        log.record(ApiCall("users/lookup", 45.0, 47.0, 0.0, 100))
        return log

    def test_aggregates_match_a_naive_rescan(self):
        log = self._mixed_log()
        calls = log.calls()
        assert log.count() == len(calls)
        assert log.failures() == sum(1 for c in calls if not c.ok)
        assert log.total_items() == sum(c.items for c in calls)
        assert log.total_waited() == sum(c.waited for c in calls)
        for resource in {"users/lookup", "followers/ids"}:
            subset = log.calls(resource)
            assert log.count(resource) == len(subset)
            assert log.failures(resource) == \
                sum(1 for c in subset if not c.ok)
            assert log.total_items(resource) == \
                sum(c.items for c in subset)

    def test_summary_matches_a_naive_recompute(self):
        log = self._mixed_log()
        expected = {}
        for call in log.calls():
            stats = expected.setdefault(call.resource, {
                "calls": 0, "items": 0, "waited": 0.0,
                "total_latency": 0.0, "failures": 0})
            if not call.ok:
                stats["failures"] += 1
                continue
            stats["calls"] += 1
            stats["items"] += call.items
            stats["waited"] += call.waited
            stats["total_latency"] += call.latency
        assert log.summary() == {r: expected[r] for r in sorted(expected)}

    def test_summary_returns_copies(self):
        log = self._mixed_log()
        log.summary()["users/lookup"]["calls"] = 999
        assert log.summary()["users/lookup"]["calls"] == 2

    def test_clear_resets_every_aggregate(self):
        log = self._mixed_log()
        log.clear()
        assert log.count() == 0
        assert log.failures() == 0
        assert log.total_items() == 0
        assert log.total_waited() == 0.0
        assert log.summary() == {}
        assert log.count("users/lookup") == 0
        assert log.total_items("followers/ids") == 0
