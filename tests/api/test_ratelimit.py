"""Unit and property tests for the rate limiter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    DEFAULT_POLICIES,
    TABLE_I,
    WINDOW,
    RateLimiter,
    RateLimitPolicy,
    TokenBucket,
)
from repro.core import ConfigurationError, RateLimitExceededError


class TestPolicies:
    def test_table1_values_verbatim(self):
        expected = {
            "followers/ids": (5000, 1),
            "friends/ids": (5000, 1),
            "users/lookup": (100, 12),
            "statuses/user_timeline": (200, 12),
        }
        assert len(TABLE_I) == 4
        for policy in TABLE_I:
            elements, per_minute = expected[policy.resource]
            assert policy.elements_per_request == elements
            assert policy.requests_per_minute == per_minute

    def test_window_budget(self):
        assert DEFAULT_POLICIES["followers/ids"].window_budget == 15
        assert DEFAULT_POLICIES["users/lookup"].window_budget == 180

    def test_window_is_fifteen_minutes(self):
        assert WINDOW == 900.0

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            RateLimitPolicy("x", 0, 1)
        with pytest.raises(ConfigurationError):
            RateLimitPolicy("x", 1, 0)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(capacity=10, rate=1.0, start_time=0.0)
        assert bucket.available(0.0) == 10

    def test_burst_then_starve(self):
        bucket = TokenBucket(capacity=3, rate=1.0, start_time=0.0)
        for _ in range(3):
            assert bucket.wait_time(0.0) == 0.0
            bucket.consume(0.0)
        assert bucket.wait_time(0.0) == pytest.approx(1.0)

    def test_refills_continuously_up_to_capacity(self):
        bucket = TokenBucket(capacity=5, rate=2.0, start_time=0.0)
        for _ in range(5):
            bucket.consume(0.0)
        assert bucket.available(1.0) == pytest.approx(2.0)
        assert bucket.available(100.0) == 5.0

    def test_consume_without_waiting_raises(self):
        bucket = TokenBucket(capacity=1, rate=0.1, start_time=0.0)
        bucket.consume(0.0)
        with pytest.raises(RateLimitExceededError):
            bucket.consume(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=0, rate=1, start_time=0)
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=1, rate=0, start_time=0)

    @given(
        capacity=st.integers(min_value=1, max_value=50),
        rate=st.floats(min_value=0.01, max_value=10.0),
        consumes=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_wait_then_consume_never_raises(self, capacity, rate,
                                                     consumes):
        bucket = TokenBucket(capacity=capacity, rate=rate, start_time=0.0)
        now = 0.0
        for _ in range(consumes):
            now += bucket.wait_time(now)
            bucket.consume(now)  # must not raise
        assert bucket.available(now) <= capacity


class TestRateLimiter:
    def test_unknown_resource(self):
        limiter = RateLimiter(0.0)
        with pytest.raises(ConfigurationError):
            limiter.wait_time("nope", 0.0)
        with pytest.raises(ConfigurationError):
            limiter.consume("nope", 0.0)
        with pytest.raises(ConfigurationError):
            limiter.policy("nope")

    def test_consume_over_budget_names_resource(self):
        limiter = RateLimiter(0.0)
        for _ in range(15):
            limiter.consume("followers/ids", 0.0)
        with pytest.raises(RateLimitExceededError) as info:
            limiter.consume("followers/ids", 0.0)
        assert info.value.resource == "followers/ids"
        assert info.value.retry_after > 0

    def test_credentials_scale_budget(self):
        limiter = RateLimiter(0.0, credentials=4)
        for _ in range(60):  # 4 x 15
            limiter.consume("followers/ids", 0.0)
        assert limiter.wait_time("followers/ids", 0.0) > 0

    def test_invalid_credentials(self):
        with pytest.raises(ConfigurationError):
            RateLimiter(0.0, credentials=0)

    def test_resources_listing(self):
        assert set(RateLimiter(0.0).resources()) == set(DEFAULT_POLICIES)
