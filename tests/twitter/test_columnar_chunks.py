"""Chunk-boundary behaviour of the columnar substrate.

Follower pages must be independent of chunk geometry: any page that
straddles one or many chunk boundaries returns exactly the id sequence
the object substrate computes arithmetically, for pathological chunk
sizes (1, a prime, the page size, page size + 1), and the service-side
newest-first ordering survives chunking, with post-reference arrivals
still appearing as a strict prefix of the head page.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import TwitterApiClient
from repro.core import DAY, PAPER_EPOCH, SimClock
from repro.twitter import add_simple_target, build_world, columnar_twin

PAGE_SIZE = 100
CHUNK_SIZES = (1, 7, PAGE_SIZE, PAGE_SIZE + 1)
FOLLOWERS = 1037  # not a multiple of anything above: ragged last chunk

SEED = 19


@pytest.fixture(scope="module")
def object_world():
    world = build_world(seed=SEED, ref_time=PAPER_EPOCH)
    add_simple_target(world, "target", FOLLOWERS, 0.3, 0.2, 0.5,
                      daily_new_followers=40.0)
    return world


def twin_for(object_world, chunk_size):
    return columnar_twin(object_world, chunk_size=chunk_size)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_pages_identical_across_chunk_sizes(object_world, chunk_size):
    """Full cursor walk: every page equals the object substrate's."""
    twin = twin_for(object_world, chunk_size)
    reference = TwitterApiClient(object_world, SimClock(PAPER_EPOCH))
    columnar = TwitterApiClient(twin, SimClock(PAPER_EPOCH))
    cursor = -1
    pages = 0
    while True:
        expected = reference.followers_ids(
            screen_name="target", cursor=cursor, count=PAGE_SIZE)
        actual = columnar.followers_ids(
            screen_name="target", cursor=cursor, count=PAGE_SIZE)
        assert actual == expected
        pages += 1
        if expected.next_cursor == 0:
            break
        cursor = expected.next_cursor
    assert pages == -(-FOLLOWERS // PAGE_SIZE)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_straddling_slices_identical(object_world, chunk_size):
    """Raw chronological slices crossing 0, 1 and many boundaries."""
    twin = twin_for(object_world, chunk_size)
    population = object_world.population("target")
    columnar = twin.population("target")
    spans = [
        (0, 1),
        (0, FOLLOWERS),
        (chunk_size - 1, chunk_size + 1) if chunk_size > 1 else (0, 2),
        (chunk_size * 3 - 1, chunk_size * 5 + 2),
        (FOLLOWERS - 1, FOLLOWERS),
        (FOLLOWERS, FOLLOWERS),  # empty tail slice
    ]
    for start, stop in spans:
        expected = population.follower_ids(start, stop)
        actual = columnar.follower_ids(start, stop)
        assert actual.dtype == np.int64
        assert np.array_equal(actual, expected), (start, stop)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_newest_first_prefix_preserved(object_world, chunk_size):
    """New arrivals prefix the head page regardless of chunk geometry.

    The paper's Section IV-B finding: followers/ids returns newest
    first, so followers arriving after an earlier snapshot appear as a
    strict prefix of the later head page.
    """
    twin = twin_for(object_world, chunk_size)
    early_clock = SimClock(PAPER_EPOCH)
    late_clock = SimClock(PAPER_EPOCH + 2 * DAY)
    early = TwitterApiClient(twin, early_clock).followers_ids(
        screen_name="target", count=PAGE_SIZE)
    late = TwitterApiClient(twin, late_clock).followers_ids(
        screen_name="target", count=PAGE_SIZE)
    population = twin.population("target")
    grown = (population.size_at(late_clock.now())
             - population.size_at(early_clock.now()))
    assert 0 < grown < PAGE_SIZE
    # The late head page = the new arrivals, then yesterday's head.
    assert late.ids[grown:] == early.ids[:PAGE_SIZE - grown]
    assert set(late.ids[:grown]).isdisjoint(early.ids)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_accounts_at_chunk_boundaries_identical(object_world, chunk_size):
    twin = twin_for(object_world, chunk_size)
    population = object_world.population("target")
    columnar = twin.population("target")
    now = PAPER_EPOCH
    positions = sorted({
        0, chunk_size - 1, chunk_size, chunk_size + 1,
        5 * chunk_size - 1, 5 * chunk_size, FOLLOWERS - 1,
    } & set(range(FOLLOWERS)))
    for position in positions:
        assert columnar.account_at(position, now) == \
            population.account_at(position, now), position


def test_edge_chunk_cache_is_bounded(object_world):
    from repro.twitter.columnar import EDGE_CHUNKS_CACHED

    twin = twin_for(object_world, 7)
    columnar = twin.population("target")
    columnar.follower_ids(0, FOLLOWERS)
    assert len(columnar._edge_chunks) <= EDGE_CHUNKS_CACHED
    assert columnar.edge_chunks_materialized == -(-FOLLOWERS // 7)
