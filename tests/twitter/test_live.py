"""Unit tests for the event-driven live simulation."""

import pytest

from repro.core import ConfigurationError, DAY, HOUR, PAPER_EPOCH, SimClock, YEAR
from repro.twitter import (
    Account,
    ChurnProcess,
    LiveSimulation,
    OrganicGrowthProcess,
    TweetingProcess,
    follow_block,
    SocialGraph,
)


def make_target(graph, uid=900, name="livestar"):
    account = Account(
        user_id=uid, screen_name=name,
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=100, last_tweet_at=PAPER_EPOCH - HOUR)
    graph.add_account(account)
    return account


@pytest.fixture
def simulation():
    graph = SocialGraph(seed=1)
    make_target(graph)
    return LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=9)


class TestScheduling:
    def test_events_fire_in_time_order(self, simulation):
        fired = []
        simulation.schedule_in(20.0, lambda sim: fired.append("b"))
        simulation.schedule_in(10.0, lambda sim: fired.append("a"))
        simulation.schedule_in(30.0, lambda sim: fired.append("c"))
        simulation.run_for(25.0)
        assert fired == ["a", "b"]
        simulation.run_for(10.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self, simulation):
        fired = []
        at = simulation.now() + 5.0
        simulation.schedule(at, lambda sim: fired.append(1))
        simulation.schedule(at, lambda sim: fired.append(2))
        simulation.run_for(10.0)
        assert fired == [1, 2]

    def test_clock_lands_exactly_on_until(self, simulation):
        simulation.run_for(123.0)
        assert simulation.now() == PAPER_EPOCH + 123.0

    def test_cannot_schedule_into_the_past(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.schedule(PAPER_EPOCH - 1.0, lambda sim: None)
        with pytest.raises(ConfigurationError):
            simulation.schedule_in(-1.0, lambda sim: None)

    def test_cannot_run_backwards(self, simulation):
        simulation.run_for(10.0)
        with pytest.raises(ConfigurationError):
            simulation.run_until(PAPER_EPOCH)

    def test_event_can_schedule_followup(self, simulation):
        fired = []

        def first(sim):
            fired.append("first")
            sim.schedule_in(5.0, lambda s: fired.append("second"))

        simulation.schedule_in(1.0, first)
        simulation.run_for(10.0)
        assert fired == ["first", "second"]

    def test_executed_events_counter(self, simulation):
        simulation.schedule_in(1.0, lambda sim: None)
        simulation.schedule_in(2.0, lambda sim: None)
        assert simulation.run_for(5.0) == 2
        assert simulation.executed_events == 2
        assert simulation.pending_events() == 0


class TestOrganicGrowth:
    def test_rate_approximately_honoured(self, simulation):
        simulation.add_process(OrganicGrowthProcess(900, per_day=40.0))
        simulation.run_for(10 * DAY)
        count = simulation.graph.follower_count(900, simulation.now())
        assert 280 <= count <= 520  # Poisson(400) within ~5 sigma

    def test_arrivals_enter_in_chronological_order(self, simulation):
        simulation.add_process(OrganicGrowthProcess(900, per_day=30.0))
        simulation.run_for(5 * DAY)
        graph = simulation.graph
        now = simulation.now()
        ids = list(graph.follower_ids(
            900, 0, graph.follower_count(900, now), now))
        assert ids == sorted(ids)  # minted ids are time-ordered

    def test_new_accounts_resolve_and_have_labels(self, simulation):
        simulation.add_process(OrganicGrowthProcess(900, per_day=30.0))
        simulation.run_for(3 * DAY)
        graph = simulation.graph
        now = simulation.now()
        ids = graph.follower_ids(900, 0, 10, now)
        for uid in ids:
            account = graph.account_by_id(uid, now)
            assert account.true_label is not None
            assert account.created_at <= now

    def test_persona_mix_validated(self):
        with pytest.raises(ConfigurationError):
            OrganicGrowthProcess(900, per_day=10.0, personas={"nope": 1.0})
        with pytest.raises(ConfigurationError):
            OrganicGrowthProcess(900, per_day=0.0)

    def test_deterministic_given_seed(self):
        def run():
            graph = SocialGraph(seed=1)
            make_target(graph)
            sim = LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=33)
            sim.add_process(OrganicGrowthProcess(900, per_day=25.0))
            sim.run_for(4 * DAY)
            return list(graph.follower_ids(900, 0, 10_000, sim.now()))
        assert run() == run()


class TestChurn:
    def test_churn_shrinks_audience(self, simulation):
        graph = simulation.graph
        block = [
            Account(user_id=1000 + i, screen_name=f"f{i}",
                    created_at=PAPER_EPOCH - YEAR, statuses_count=0)
            for i in range(400)
        ]
        follow_block(simulation, 900, block)
        before = graph.follower_count(900, simulation.now())
        simulation.add_process(ChurnProcess(900, daily_fraction=0.1))
        simulation.run_for(10 * DAY)
        after = graph.follower_count(900, simulation.now())
        assert after < before * 0.6

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ChurnProcess(900, daily_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ChurnProcess(900, daily_fraction=1.0)


class TestTweeting:
    def test_counters_advance(self, simulation):
        before = simulation.graph.account_by_id(900, simulation.now())
        simulation.add_process(TweetingProcess(900, per_day=12.0))
        simulation.run_for(5 * DAY)
        after = simulation.graph.account_by_id(900, simulation.now())
        assert after.statuses_count > before.statuses_count + 20
        assert after.last_tweet_at > before.last_tweet_at

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            TweetingProcess(900, per_day=0.0)


class TestFollowBlock:
    def test_block_lands_at_head_of_listing(self, simulation):
        graph = simulation.graph
        early = Account(user_id=2000, screen_name="early",
                        created_at=PAPER_EPOCH - YEAR, statuses_count=0)
        graph.add_account(early)
        graph.follow(2000, 900, PAPER_EPOCH - 100.0)
        simulation.run_for(HOUR)
        block = [
            Account(user_id=3000 + i, screen_name=f"b{i}",
                    created_at=PAPER_EPOCH - YEAR, statuses_count=0)
            for i in range(5)
        ]
        follow_block(simulation, 900, block)
        now = simulation.now()
        ids = list(graph.follower_ids(900, 0, 10, now))
        assert ids[0] == 2000           # chronological listing
        assert set(ids[1:]) == {3000 + i for i in range(5)}
