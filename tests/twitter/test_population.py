"""Unit tests for lazy follower populations and the synthetic world."""

import pytest

from repro.core import (
    DAY,
    DuplicateAccountError,
    PAPER_EPOCH,
    UnknownAccountError,
)
from repro.twitter import (
    AMBIENT_POOL_SIZE,
    Label,
    add_simple_target,
    ambient_id,
    build_world,
    decode_follower,
    follower_id,
    namespace_of,
    target_id,
)

NOW = PAPER_EPOCH


@pytest.fixture(scope="module")
def world():
    w = build_world(seed=5)
    add_simple_target(w, "first", 8000, 0.4, 0.1, 0.5,
                      daily_new_followers=100)
    add_simple_target(w, "second", 3000, 0.1, 0.0, 0.9)
    return w


class TestIdNamespaces:
    def test_follower_roundtrip(self):
        fid = follower_id(3, 123456)
        assert decode_follower(fid) == (3, 123456)

    def test_namespaces_disjoint(self):
        tags = {namespace_of(target_id(1)),
                namespace_of(follower_id(1, 1)),
                namespace_of(ambient_id(1))}
        assert len(tags) == 3

    def test_decode_rejects_foreign_namespace(self):
        with pytest.raises(UnknownAccountError):
            decode_follower(target_id(1))


class TestFollowerPopulation:
    def test_size_at_reference(self, world):
        assert world.population("first").size_at(NOW) == 8000

    def test_growth_after_reference(self, world):
        pop = world.population("first")
        assert pop.size_at(NOW + DAY) == 8100

    def test_follower_ids_slice_chronological(self, world):
        pop = world.population("first")
        ids = list(pop.follower_ids(10, 15))
        assert ids == [pop.follower_id_at(p) for p in range(10, 15)]

    def test_arrival_times_monotone(self, world):
        pop = world.population("first")
        times = [pop.followed_at(p) for p in range(0, 8000, 501)]
        assert times == sorted(times)

    def test_account_deterministic(self, world):
        pop = world.population("first")
        first = pop.account_at(17, NOW)
        second = pop.account_at(17, NOW)
        assert first == second

    def test_account_creation_precedes_follow(self, world):
        pop = world.population("first")
        for position in range(0, 8000, 997):
            account = pop.account_at(position, NOW)
            assert account.created_at <= pop.followed_at(position)

    def test_composition_matches_spec(self, world):
        comp = world.population("first").composition(NOW)
        assert comp[Label.INACTIVE] == pytest.approx(0.4, abs=0.03)
        assert comp[Label.FAKE] == pytest.approx(0.1, abs=0.02)
        assert comp[Label.GENUINE] == pytest.approx(0.5, abs=0.03)

    def test_recency_tilt_head_less_inactive(self, world):
        pop = world.population("first")
        head = [pop.true_label_at(p) for p in range(7000, 8000)]
        tail = [pop.true_label_at(p) for p in range(0, 1000)]
        head_inactive = sum(1 for l in head if l is Label.INACTIVE) / 1000
        tail_inactive = sum(1 for l in tail if l is Label.INACTIVE) / 1000
        assert head_inactive < tail_inactive

    def test_labels_match_behaviour(self, world):
        pop = world.population("first")
        for position in range(0, 8000, 397):
            account = pop.account_at(position, NOW)
            age = account.last_tweet_age(NOW)
            behaviourally_inactive = age is None or age > 90 * DAY
            assert behaviourally_inactive == (
                account.true_label is Label.INACTIVE)


class TestSyntheticWorld:
    def test_duplicate_target_rejected(self, world):
        with pytest.raises(DuplicateAccountError):
            add_simple_target(world, "FIRST", 10, 0.0, 0.0, 1.0)

    def test_unknown_target_lookup(self, world):
        with pytest.raises(UnknownAccountError):
            world.population("nobody")
        with pytest.raises(UnknownAccountError):
            world.account_by_name("nobody", NOW)

    def test_target_account_counts_live(self, world):
        account = world.account_by_name("first", NOW)
        assert account.followers_count == 8000
        later = world.account_by_name("first", NOW + 2 * DAY)
        assert later.followers_count == 8200

    def test_account_by_id_for_follower(self, world):
        pop = world.population("second")
        fid = pop.follower_id_at(5)
        assert world.account_by_id(fid, NOW).user_id == fid

    def test_unborn_follower_not_resolvable(self, world):
        pop = world.population("first")
        fid = pop.follower_id_at(8050)  # arrives within the next day
        with pytest.raises(UnknownAccountError):
            world.account_by_id(fid, NOW)
        assert world.account_by_id(fid, NOW + DAY).user_id == fid

    def test_follower_ids_clamped(self, world):
        assert len(world.follower_ids(target_id(0), 7990, 9999, NOW)) == 10

    def test_leaf_follower_list_empty(self, world):
        pop = world.population("first")
        assert world.follower_ids(pop.follower_id_at(0), 0, 10, NOW) == []

    def test_friend_ids_resolve_to_ambient_accounts(self, world):
        pop = world.population("first")
        fid = pop.follower_id_at(3)
        friends = world.friend_ids(fid, 0, 10, NOW)
        count = min(world.friend_count(fid, NOW), 10)
        assert len(friends) == count
        for friend in friends:
            account = world.account_by_id(friend, NOW)
            assert account.user_id == friend

    def test_ambient_pool_bounded(self, world):
        with pytest.raises(UnknownAccountError):
            world.account_by_id(ambient_id(AMBIENT_POOL_SIZE), NOW)

    def test_timeline_consistent_with_account(self, world):
        pop = world.population("first")
        for position in (1, 100, 4000):
            account = pop.account_at(position, NOW)
            tweets = world.timeline(account.user_id, 10, NOW)
            if account.statuses_count == 0:
                assert tweets == []
            else:
                assert tweets[0].created_at == account.last_tweet_at

    def test_targets_listing(self, world):
        assert [p.spec.screen_name for p in world.targets()] == [
            "first", "second"]


class TestPostRefBurstSpec:
    def test_fake_purchase_burst_is_all_fake(self):
        from repro.twitter import PERSONAS, fake_purchase_burst

        burst = fake_purchase_burst(0.5, 40)
        assert burst.days_after == 0.5
        assert burst.count == 40
        for name, weight in burst.personas.items():
            if weight > 0:
                assert PERSONAS[name].label is Label.FAKE

    @pytest.mark.parametrize("kwargs", [
        dict(days_after=-0.1, count=5, personas={"bot_dormant": 1.0}),
        dict(days_after=1.0, count=0, personas={"bot_dormant": 1.0}),
        dict(days_after=1.0, count=5, personas={}),
        dict(days_after=1.0, count=5, personas={"no_such_persona": 1.0}),
        dict(days_after=1.0, count=5, personas={"bot_dormant": -1.0}),
        dict(days_after=1.0, count=5, personas={"bot_dormant": 0.0}),
    ])
    def test_invalid_burst_rejected(self, kwargs):
        from repro.core import ConfigurationError
        from repro.twitter import PostRefBurst

        with pytest.raises(ConfigurationError):
            PostRefBurst(**kwargs)


class TestBurstPopulation:
    BURST_AT_DAYS = 0.55
    BURST_COUNT = 40
    BASE = 200

    @pytest.fixture(scope="class")
    def pop(self):
        from repro.twitter import fake_purchase_burst

        world = build_world(seed=17)
        add_simple_target(
            world, "bursty", self.BASE, 0.3, 0.2, 0.5,
            daily_new_followers=10.0,
            post_ref_bursts=(
                fake_purchase_burst(self.BURST_AT_DAYS, self.BURST_COUNT),))
        return world.population("bursty")

    def test_size_steps_by_burst_count(self, pop):
        at = NOW + self.BURST_AT_DAYS * DAY
        assert pop.size_at(at - 1.0) == self.BASE + 5  # 5 trickle by then
        assert pop.size_at(at) == self.BASE + 5 + self.BURST_COUNT

    def test_burst_members_are_ground_truth_fakes(self, pop):
        first = self.BASE + 5
        for position in range(first, first + self.BURST_COUNT):
            assert pop.true_label_at(position) is Label.FAKE, position
            assert pop.followed_at(position) == \
                NOW + self.BURST_AT_DAYS * DAY

    def test_burst_members_are_materialisable_accounts(self, pop):
        at = NOW + DAY
        first = self.BASE + 5
        account = pop.account_at(first + 7, at)
        assert account.true_label is Label.FAKE
        assert account.created_at <= pop.followed_at(first + 7)

    def test_burst_free_population_bit_identical(self):
        """A burst never perturbs the base or the trickle around it."""
        from repro.twitter import fake_purchase_burst

        plain = build_world(seed=17)
        add_simple_target(plain, "bursty", self.BASE, 0.3, 0.2, 0.5,
                          daily_new_followers=10.0)
        bursty = build_world(seed=17)
        add_simple_target(
            bursty, "bursty", self.BASE, 0.3, 0.2, 0.5,
            daily_new_followers=10.0,
            post_ref_bursts=(
                fake_purchase_burst(self.BURST_AT_DAYS, self.BURST_COUNT),))
        a, b = plain.population("bursty"), bursty.population("bursty")
        at = NOW + 2 * DAY
        for position in range(0, self.BASE + 5, 23):
            # Everything that arrived before the burst is untouched.
            assert a.account_at(position, at) == b.account_at(position, at)
            assert a.followed_at(position) == b.followed_at(position)
