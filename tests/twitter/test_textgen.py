"""Unit tests for the tweet-text generator."""

from collections import Counter

from repro.core import make_rng
from repro.twitter import BehaviorProfile, Tweet, TweetTextGenerator


def generate(profile, n=300, seed=1):
    gen = TweetTextGenerator(make_rng(seed), profile)
    return [Tweet(tweet_id=i, user_id=1, created_at=1e9,
                  text=gen.next_text(), source=gen.next_source())
            for i in range(n)]


class TestContentRates:
    def test_pure_spam_profile(self):
        tweets = generate(BehaviorProfile(spam_ratio=1.0, retweet_ratio=0.0))
        assert all(t.contains_spam_phrase() for t in tweets)

    def test_clean_profile_produces_no_spam(self):
        tweets = generate(BehaviorProfile(spam_ratio=0.0))
        assert not any(t.contains_spam_phrase() for t in tweets)

    def test_link_ratio_approximate(self):
        tweets = generate(BehaviorProfile(link_ratio=0.8, retweet_ratio=0.0))
        share = sum(1 for t in tweets if t.has_link()) / len(tweets)
        assert 0.7 <= share <= 0.9

    def test_retweet_ratio_approximate(self):
        tweets = generate(BehaviorProfile(retweet_ratio=0.5))
        share = sum(1 for t in tweets if t.is_retweet()) / len(tweets)
        assert 0.4 <= share <= 0.6

    def test_all_retweets(self):
        tweets = generate(BehaviorProfile(retweet_ratio=1.0))
        assert all(t.is_retweet() for t in tweets)


class TestDuplicatePool:
    def test_pool_produces_exact_repeats(self):
        tweets = generate(
            BehaviorProfile(duplicate_pool=3, retweet_ratio=0.0), n=100)
        bodies = Counter(t.body() for t in tweets)
        assert len(bodies) <= 3
        assert max(bodies.values()) > 3

    def test_no_pool_rarely_repeats(self):
        tweets = generate(BehaviorProfile(duplicate_pool=0), n=100)
        bodies = Counter(t.body() for t in tweets)
        assert max(bodies.values()) <= 3

    def test_retweeted_duplicates_share_body(self):
        tweets = generate(
            BehaviorProfile(duplicate_pool=1, retweet_ratio=0.5), n=50)
        assert len({t.body() for t in tweets}) == 1


class TestSources:
    def test_automation_ratio_one(self):
        gen = TweetTextGenerator(
            make_rng(2), BehaviorProfile(api_source_ratio=1.0))
        human = ("web", "Twitter for iPhone", "Twitter for Android")
        assert all(gen.next_source() not in human for _ in range(50))

    def test_automation_ratio_zero(self):
        gen = TweetTextGenerator(
            make_rng(3), BehaviorProfile(api_source_ratio=0.0))
        human = ("web", "Twitter for iPhone", "Twitter for Android")
        assert all(gen.next_source() in human for _ in range(50))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        profile = BehaviorProfile(link_ratio=0.5, spam_ratio=0.3)
        first = [TweetTextGenerator(make_rng(9), profile).next_text()
                 for _ in range(1)]
        second = [TweetTextGenerator(make_rng(9), profile).next_text()
                  for _ in range(1)]
        assert first == second
