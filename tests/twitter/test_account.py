"""Unit tests for the account model."""

import pytest

from repro.core import ConfigurationError, DAY, PAPER_EPOCH, YEAR
from repro.twitter import Account, BehaviorProfile, LABELS, Label


def make_account(**overrides):
    defaults = dict(
        user_id=1,
        screen_name="alice",
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=10,
        last_tweet_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return Account(**defaults)


class TestValidation:
    def test_minimal_account(self):
        account = make_account()
        assert account.screen_name == "alice"

    def test_negative_user_id(self):
        with pytest.raises(ConfigurationError):
            make_account(user_id=-1)

    def test_empty_screen_name(self):
        with pytest.raises(ConfigurationError):
            make_account(screen_name="")

    def test_negative_counts(self):
        with pytest.raises(ConfigurationError):
            make_account(followers_count=-1)

    def test_zero_tweets_forbids_last_tweet(self):
        with pytest.raises(ConfigurationError):
            make_account(statuses_count=0, last_tweet_at=PAPER_EPOCH)

    def test_tweets_require_last_tweet(self):
        with pytest.raises(ConfigurationError):
            make_account(statuses_count=5, last_tweet_at=None)

    def test_last_tweet_before_creation(self):
        with pytest.raises(ConfigurationError):
            make_account(last_tweet_at=PAPER_EPOCH - 3 * YEAR)


class TestDerivedObservables:
    def test_age(self):
        account = make_account(created_at=PAPER_EPOCH - YEAR)
        assert account.age_at(PAPER_EPOCH) == pytest.approx(YEAR)
        assert account.age_at(PAPER_EPOCH - 2 * YEAR) == 0.0

    def test_ff_ratio(self):
        account = make_account(followers_count=10, friends_count=500)
        assert account.friends_followers_ratio() == 50.0

    def test_ff_ratio_zero_followers(self):
        account = make_account(followers_count=0, friends_count=300)
        assert account.friends_followers_ratio() == 300.0

    def test_profile_flags(self):
        account = make_account(description=" ", location="Pisa", url="")
        assert not account.has_bio()
        assert account.has_location()
        assert not account.has_url()

    def test_last_tweet_age(self):
        account = make_account(last_tweet_at=PAPER_EPOCH - 5 * DAY)
        assert account.last_tweet_age(PAPER_EPOCH) == pytest.approx(5 * DAY)

    def test_last_tweet_age_never_tweeted(self):
        account = make_account(statuses_count=0, last_tweet_at=None)
        assert account.last_tweet_age(PAPER_EPOCH) is None

    def test_has_ever_tweeted(self):
        assert make_account().has_ever_tweeted()
        assert not make_account(
            statuses_count=0, last_tweet_at=None).has_ever_tweeted()

    def test_with_counts_returns_updated_copy(self):
        account = make_account(followers_count=1)
        updated = account.with_counts(followers_count=99, friends_count=7)
        assert updated.followers_count == 99
        assert updated.friends_count == 7
        assert account.followers_count == 1  # original untouched


class TestBehaviorProfile:
    def test_defaults_valid(self):
        BehaviorProfile()

    @pytest.mark.parametrize("field", [
        "retweet_ratio", "link_ratio", "spam_ratio",
        "mention_ratio", "hashtag_ratio", "api_source_ratio"])
    def test_ratio_bounds(self, field):
        with pytest.raises(ConfigurationError):
            BehaviorProfile(**{field: 1.5})

    def test_negative_rate(self):
        with pytest.raises(ConfigurationError):
            BehaviorProfile(tweets_per_day=-0.1)

    def test_negative_pool(self):
        with pytest.raises(ConfigurationError):
            BehaviorProfile(duplicate_pool=-1)


class TestLabels:
    def test_three_labels_in_table_order(self):
        assert LABELS == (Label.INACTIVE, Label.FAKE, Label.GENUINE)
