"""Unit tests for stylistic screen-name generation."""

import string

from repro.core import make_rng
from repro.twitter.names import (
    bot_screen_name,
    digit_fraction,
    display_name,
    human_screen_name,
)


class TestHumanNames:
    def test_valid_handles(self):
        rng = make_rng(1)
        for __ in range(200):
            handle = human_screen_name(rng)
            assert 1 <= len(handle) <= 15
            assert all(c in string.ascii_lowercase + string.digits + "._"
                       for c in handle)

    def test_low_digit_fraction_on_average(self):
        rng = make_rng(2)
        fractions = [digit_fraction(human_screen_name(rng))
                     for __ in range(300)]
        assert sum(fractions) / len(fractions) < 0.2

    def test_large_space(self):
        rng = make_rng(3)
        handles = {human_screen_name(rng) for __ in range(500)}
        assert len(handles) > 450


class TestBotNames:
    def test_valid_handles(self):
        rng = make_rng(4)
        for __ in range(200):
            handle = bot_screen_name(rng)
            assert 1 <= len(handle) <= 15

    def test_high_digit_fraction_on_average(self):
        rng = make_rng(5)
        fractions = [digit_fraction(bot_screen_name(rng))
                     for __ in range(300)]
        assert sum(fractions) / len(fractions) > 0.35

    def test_separates_from_human_names(self):
        """The feature the classifier uses must actually separate."""
        rng = make_rng(6)
        human = sorted(digit_fraction(human_screen_name(rng))
                       for __ in range(300))
        bot = sorted(digit_fraction(bot_screen_name(rng))
                     for __ in range(300))
        # Compare medians: a robust gap, not perfect separation.
        assert bot[150] > human[150] + 0.2


class TestDisplayName:
    def test_title_case_two_words(self):
        rng = make_rng(7)
        name = display_name(rng)
        parts = name.split(" ")
        assert len(parts) == 2
        assert all(part[0].isupper() for part in parts)


class TestDigitFraction:
    def test_values(self):
        assert digit_fraction("abc123") == 0.5
        assert digit_fraction("abcdef") == 0.0
        assert digit_fraction("12345") == 1.0
        assert digit_fraction("") == 0.0
