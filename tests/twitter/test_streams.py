"""Regression pin for the synthetic-world random stream split.

The columnar substrate's bit-identity contract rests on both substrates
consuming *identical* random streams.  These tests pin the derived
seeds and the first draws of every stream in
:mod:`repro.twitter.streams` to hard-coded values; if anyone re-keys a
stream (renames a path component, reorders arguments, changes the
derivation hash), the pins fail loudly instead of the two substrates
silently drifting apart.
"""

from __future__ import annotations

import pytest

from repro.core.rng import derive_seed
from repro.twitter import streams

SEED = 42

# (stream name, derivation path, derived 64-bit seed,
#  first random(), first getrandbits(32) after it)
PINNED = [
    ("persona", ("persona", 0, 5),
     7287446852499807581, 0.24291493706446465, 3627706456),
    ("account", ("account", 0, 5),
     15956665559216444968, 0.610817433916283, 231015833),
    ("composition", ("composition", 0),
     335957543461836668, 0.37697574039301773, 3174415877),
    ("ambient", ("ambient", 17),
     1357053309217810847, 0.1338688106234711, 453824421),
    ("friends", ("friends", 12345),
     11770962636459208692, 0.21545607123394583, 3870747768),
    ("timeline", ("timeline", 12345),
     5942430987252212878, 0.30718753550304323, 3164416102),
    ("graph", ("graph", "obama"),
     9275016577232206654, 0.684028112766414, 264432056),
]

STREAM_FACTORIES = {
    "persona": lambda: streams.follower_persona_rng(SEED, 0, 5),
    "account": lambda: streams.follower_account_rng(SEED, 0, 5),
    "composition": lambda: streams.composition_rng(SEED, 0),
    "ambient": lambda: streams.ambient_rng(SEED, 17),
    "friends": lambda: streams.friends_rng(SEED, 12345),
    "timeline": lambda: streams.timeline_rng(SEED, 12345),
    "graph": lambda: streams.graph_rng(SEED, "obama"),
}


@pytest.mark.parametrize(
    "name,path,seed64,first_random,first_bits", PINNED,
    ids=[row[0] for row in PINNED])
def test_stream_pins(name, path, seed64, first_random, first_bits):
    assert derive_seed(SEED, *path) == seed64
    rng = STREAM_FACTORIES[name]()
    assert rng.random() == first_random
    assert rng.getrandbits(32) == first_bits


def test_streams_are_independent():
    """Different paths yield different streams (no accidental aliasing)."""
    seeds = {derive_seed(SEED, *path) for _, path, *_ in PINNED}
    assert len(seeds) == len(PINNED)


def test_follower_streams_keyed_by_ordinal_and_position():
    a = streams.follower_account_rng(SEED, 0, 5).random()
    b = streams.follower_account_rng(SEED, 1, 5).random()
    c = streams.follower_account_rng(SEED, 0, 6).random()
    assert len({a, b, c}) == 3
    # ... and are self-consistent across calls (pure function of the key).
    assert streams.follower_account_rng(SEED, 0, 5).random() == a


def test_population_draws_from_documented_streams():
    """The object substrate's account generation consumes exactly the
    persona/account streams — pinned end-to-end, not just at the RNG."""
    from repro.core.timeutil import PAPER_EPOCH
    from repro.twitter.generator import make_target_spec
    from repro.twitter.population import SyntheticWorld

    world = SyntheticWorld(seed=SEED, ref_time=PAPER_EPOCH)
    world.add_target(make_target_spec(
        "pinned_target", 100, 0.3, 0.2, 0.5, ref_time=PAPER_EPOCH))
    population = world.population("pinned_target")
    account = population.account_at(5, PAPER_EPOCH)
    rng = streams.follower_account_rng(SEED, 0, 5)
    replayed = population.persona_at(5).sample(
        rng, population.follower_id_at(5), "u0_5", PAPER_EPOCH)
    # account_at may re-anchor created_at to the follow instant, but the
    # raw sample must come off the documented stream.
    assert replayed.screen_name == account.screen_name
    assert replayed.statuses_count == account.statuses_count
    assert replayed.followers_count == account.followers_count
