"""Unit tests for the materialised social graph."""

import pytest

from repro.core import (
    DuplicateAccountError,
    GraphError,
    PAPER_EPOCH,
    UnknownAccountError,
    YEAR,
)
from repro.twitter import Account, SocialGraph

NOW = PAPER_EPOCH


def make_account(uid, name, **overrides):
    defaults = dict(
        user_id=uid,
        screen_name=name,
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=10,
        last_tweet_at=PAPER_EPOCH - 1000,
    )
    defaults.update(overrides)
    return Account(**defaults)


@pytest.fixture
def graph():
    g = SocialGraph(seed=1)
    for uid, name in ((1, "alice"), (2, "bob"), (3, "carol")):
        g.add_account(make_account(uid, name))
    return g


class TestMutation:
    def test_add_and_len(self, graph):
        assert len(graph) == 3

    def test_duplicate_id_rejected(self, graph):
        with pytest.raises(DuplicateAccountError):
            graph.add_account(make_account(1, "other"))

    def test_duplicate_name_rejected_case_insensitive(self, graph):
        with pytest.raises(DuplicateAccountError):
            graph.add_account(make_account(9, "ALICE"))

    def test_follow_and_unfollow(self, graph):
        graph.follow(2, 1, NOW - 100)
        assert graph.is_following(2, 1)
        graph.unfollow(2, 1)
        assert not graph.is_following(2, 1)

    def test_self_follow_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.follow(1, 1, NOW)

    def test_double_follow_rejected(self, graph):
        graph.follow(2, 1, NOW)
        with pytest.raises(GraphError):
            graph.follow(2, 1, NOW + 1)

    def test_unfollow_without_edge_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.unfollow(2, 1)

    def test_unknown_account_rejected(self, graph):
        with pytest.raises(UnknownAccountError):
            graph.follow(99, 1, NOW)


class TestObservation:
    def test_counts_are_live(self, graph):
        graph.follow(2, 1, NOW - 50)
        graph.follow(3, 1, NOW - 10)
        alice = graph.account_by_id(1, NOW)
        assert alice.followers_count == 2
        bob = graph.account_by_id(2, NOW)
        assert bob.friends_count == 1

    def test_counts_respect_observation_time(self, graph):
        graph.follow(2, 1, NOW - 50)
        graph.follow(3, 1, NOW + 50)
        assert graph.follower_count(1, NOW) == 1
        assert graph.follower_count(1, NOW + 100) == 2

    def test_follower_ids_chronological(self, graph):
        graph.follow(3, 1, NOW - 10)  # later follow inserted first
        graph.follow(2, 1, NOW - 50)
        assert list(graph.follower_ids(1, 0, 10, NOW)) == [2, 3]

    def test_friend_ids_chronological(self, graph):
        graph.follow(1, 2, NOW - 20)
        graph.follow(1, 3, NOW - 10)
        assert list(graph.friend_ids(1, 0, 10, NOW)) == [2, 3]

    def test_lookup_by_name(self, graph):
        assert graph.account_by_name("Bob", NOW).user_id == 2
        with pytest.raises(UnknownAccountError):
            graph.account_by_name("dave", NOW)

    def test_account_not_visible_before_creation(self, graph):
        with pytest.raises(UnknownAccountError):
            graph.account_by_id(1, PAPER_EPOCH - 10 * YEAR)

    def test_timeline_filtered_by_now(self, graph):
        tweets_now = graph.timeline(1, 10, NOW)
        assert all(t.created_at <= NOW for t in tweets_now)

    def test_all_account_ids(self, graph):
        assert sorted(graph.all_account_ids()) == [1, 2, 3]

    def test_update_account_replaces_snapshot(self, graph):
        updated = make_account(1, "alice", statuses_count=99,
                               last_tweet_at=NOW - 10)
        graph.update_account(updated)
        assert graph.account_by_id(1, NOW).statuses_count == 99

    def test_update_account_cannot_rename(self, graph):
        with pytest.raises(GraphError):
            graph.update_account(make_account(1, "malice"))

    def test_update_unknown_account_rejected(self, graph):
        with pytest.raises(UnknownAccountError):
            graph.update_account(make_account(42, "ghost"))

    def test_declared_counts_floor_reported_counts(self, graph):
        graph.update_account(make_account(1, "alice", followers_count=500))
        graph.follow(2, 1, NOW - 5)
        snapshot = graph.account_by_id(1, NOW)
        assert snapshot.followers_count == 500  # declared > 1 edge
