"""Unit tests for the tweet model and its detectors."""

import pytest

from repro.core import ConfigurationError
from repro.twitter import SPAM_PHRASES, Tweet


def make_tweet(text, **overrides):
    defaults = dict(tweet_id=1, user_id=2, created_at=1e9, text=text)
    defaults.update(overrides)
    return Tweet(**defaults)


class TestValidation:
    def test_empty_text_rejected(self):
        with pytest.raises(ConfigurationError):
            make_tweet("")

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            make_tweet("hi", tweet_id=-1)


class TestRetweetDetection:
    def test_rt_prefix(self):
        assert make_tweet("RT @alice: great stuff").is_retweet()

    def test_rt_mid_text_is_not_retweet(self):
        assert not make_tweet("this is RT @alice: nope").is_retweet()

    def test_plain_text(self):
        assert not make_tweet("a normal tweet").is_retweet()


class TestLinkDetection:
    def test_http_and_https(self):
        assert make_tweet("see http://t.co/abc").has_link()
        assert make_tweet("see https://example.org/x").has_link()

    def test_no_link(self):
        assert not make_tweet("nothing to click here").has_link()


class TestMentionsAndHashtags:
    def test_mentions(self):
        tweet = make_tweet("hello @alice and @bob_99")
        assert tweet.mentions() == frozenset({"alice", "bob_99"})

    def test_email_is_not_a_mention(self):
        assert make_tweet("mail me me@example.com").mentions() == frozenset()

    def test_hashtags(self):
        tweet = make_tweet("great #match today #sport")
        assert tweet.hashtags() == frozenset({"match", "sport"})

    def test_rt_source_counts_as_mention(self):
        assert "alice" in make_tweet("RT @alice: hi").mentions()


class TestSpamDetection:
    @pytest.mark.parametrize("phrase", SPAM_PHRASES[:3])
    def test_each_documented_phrase_detected(self, phrase):
        assert make_tweet(f"try this {phrase} now").contains_spam_phrase()

    def test_case_insensitive(self):
        assert make_tweet("WORK FROM HOME today").contains_spam_phrase()

    def test_clean_text(self):
        assert not make_tweet("lovely weather in Pisa").contains_spam_phrase()


class TestBody:
    def test_strips_rt_prefix(self):
        assert make_tweet("RT @alice: the content").body() == "the content"

    def test_identical_bodies_across_retweeters(self):
        first = make_tweet("RT @alice: buy this now")
        second = make_tweet("RT @bob: buy this now")
        assert first.body() == second.body()

    def test_plain_body_unchanged(self):
        assert make_tweet("just text").body() == "just text"
