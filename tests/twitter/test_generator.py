"""Unit tests for world/graph builders."""

import pytest

from repro.core import ConfigurationError, PAPER_EPOCH, YEAR
from repro.twitter import (
    Account,
    Label,
    SocialGraph,
    build_world,
    make_target_spec,
    populate_graph,
    tilted_segments,
    uniform_segments,
)

NOW = PAPER_EPOCH


class TestSegmentsBuilders:
    def test_uniform_segments_fraction_sum(self):
        segments = uniform_segments(0.3, 0.2, 0.5, pieces=4)
        assert sum(s.fraction for s in segments) == pytest.approx(1.0)

    def test_tilted_segments_preserve_totals(self):
        segments = tilted_segments(0.4, 0.1, 0.5, tilt=0.6, pieces=5)
        assert sum(s.fraction for s in segments) == pytest.approx(1.0)

    def test_tilt_zero_equals_uniform_mix(self):
        tilted = tilted_segments(0.4, 0.1, 0.5, tilt=0.0, pieces=3)
        mixes = [dict(s.personas) for s in tilted]
        assert all(m == mixes[0] for m in mixes)

    def test_bad_tilt_rejected(self):
        with pytest.raises(ConfigurationError):
            tilted_segments(0.4, 0.1, 0.5, tilt=1.0)


class TestMakeTargetSpec:
    def test_burst_preserves_composition(self):
        world = build_world(seed=9)
        spec = make_target_spec(
            "bursty", 20_000, 0.3, 0.2, 0.5,
            fake_burst_fraction=0.5, fake_burst_position=0.9)
        pop = world.add_target(spec)
        comp = pop.composition(NOW, sample=5000)
        assert comp[Label.FAKE] == pytest.approx(0.2, abs=0.03)
        assert comp[Label.INACTIVE] == pytest.approx(0.3, abs=0.03)

    def test_burst_position_places_fakes(self):
        world = build_world(seed=10)
        spec = make_target_spec(
            "endburst", 10_000, 0.0, 0.2, 0.8,
            fake_burst_fraction=1.0, fake_burst_position=1.0, tilt=0.0)
        pop = world.add_target(spec)
        head = [pop.true_label_at(p) for p in range(8500, 10_000)]
        fake_share = sum(1 for l in head if l is Label.FAKE) / len(head)
        assert fake_share > 0.95

    def test_mid_burst_leaves_head_organic(self):
        world = build_world(seed=11)
        spec = make_target_spec(
            "midburst", 10_000, 0.0, 0.2, 0.8,
            fake_burst_fraction=1.0, fake_burst_position=0.5, tilt=0.0)
        pop = world.add_target(spec)
        head = [pop.true_label_at(p) for p in range(9500, 10_000)]
        fake_share = sum(1 for l in head if l is Label.FAKE) / len(head)
        assert fake_share < 0.1

    def test_invalid_burst_fraction(self):
        with pytest.raises(ConfigurationError):
            make_target_spec("x", 100, 0.3, 0.2, 0.5, fake_burst_fraction=1.5)

    def test_invalid_burst_position(self):
        with pytest.raises(ConfigurationError):
            make_target_spec("x", 100, 0.3, 0.2, 0.5,
                             fake_burst_position=-0.1)

    def test_zero_composition_rejected(self):
        with pytest.raises(ConfigurationError):
            make_target_spec("x", 100, 0.0, 0.0, 0.0)


class TestPopulateGraph:
    def test_builds_followers_in_arrival_order(self):
        graph = SocialGraph(seed=2)
        target = Account(
            user_id=1000, screen_name="star",
            created_at=PAPER_EPOCH - 4 * YEAR,
            statuses_count=100, last_tweet_at=PAPER_EPOCH - 100)
        labels = [Label.INACTIVE] * 10 + [Label.GENUINE] * 10
        minted = populate_graph(graph, target, labels, seed=4)
        assert len(minted) == 20
        assert graph.follower_count(1000, NOW) == 20
        assert list(graph.follower_ids(1000, 0, 20, NOW)) == minted

    def test_labels_respected(self):
        graph = SocialGraph(seed=2)
        target = Account(
            user_id=1000, screen_name="star",
            created_at=PAPER_EPOCH - 4 * YEAR,
            statuses_count=100, last_tweet_at=PAPER_EPOCH - 100)
        minted = populate_graph(
            graph, target, [Label.FAKE] * 15, seed=5)
        for uid in minted:
            assert graph.account_by_id(uid, NOW).true_label is Label.FAKE
