"""Unit and property tests for arrival schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError, DAY
from repro.twitter import ArrivalSchedule, SegmentWindow, even_schedule


class TestSegmentWindow:
    def test_arrivals_inside_window(self):
        segment = SegmentWindow(count=100, start=0.0, end=1000.0)
        times = [segment.arrival_time(i) for i in range(100)]
        assert all(0.0 <= t < 1000.0 for t in times)
        assert times == sorted(times)

    def test_single_follower_lands_mid_window(self):
        segment = SegmentWindow(count=1, start=0.0, end=100.0)
        assert segment.arrival_time(0) == 50.0

    def test_gamma_backloads(self):
        even = SegmentWindow(count=10, start=0.0, end=100.0, gamma=1.0)
        late = SegmentWindow(count=10, start=0.0, end=100.0, gamma=3.0)
        assert late.arrival_time(2) < even.arrival_time(2)

    def test_position_out_of_range(self):
        segment = SegmentWindow(count=5, start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            segment.arrival_time(5)

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentWindow(count=1, start=10.0, end=5.0)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentWindow(count=1, start=0.0, end=1.0, gamma=0.0)


class TestArrivalSchedule:
    def test_needs_segments(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule([])

    def test_overlapping_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalSchedule([
                SegmentWindow(count=1, start=0.0, end=10.0),
                SegmentWindow(count=1, start=5.0, end=20.0),
            ])

    def test_monotone_arrivals_across_segments(self):
        schedule = ArrivalSchedule([
            SegmentWindow(count=50, start=0.0, end=100.0),
            SegmentWindow(count=50, start=100.0, end=110.0),  # a burst
            SegmentWindow(count=50, start=110.0, end=500.0),
        ])
        times = [schedule.arrival_time(i) for i in range(150)]
        assert times == sorted(times)

    def test_size_at_is_inverse_of_arrival(self):
        schedule = even_schedule(200, 0.0, 1000.0)
        for position in (0, 1, 57, 199):
            moment = schedule.arrival_time(position)
            assert schedule.size_at(moment) >= position + 1
            assert schedule.size_at(moment - 1e-6) <= position + 1

    def test_size_before_start_is_zero(self):
        schedule = even_schedule(100, 50.0, 100.0)
        assert schedule.size_at(0.0) == 0

    def test_size_at_ref_is_base_count(self):
        schedule = even_schedule(100, 0.0, 10.0)
        assert schedule.size_at(10.0) == 100
        assert schedule.base_count == 100

    def test_trickle_growth(self):
        schedule = even_schedule(100, 0.0, 10.0, post_ref_daily=24.0)
        assert schedule.size_at(10.0 + DAY) == 124
        assert schedule.size_at(10.0 + 2 * DAY) == 148

    def test_trickle_arrival_times_monotone(self):
        schedule = even_schedule(10, 0.0, 10.0, post_ref_daily=5.0)
        times = [schedule.arrival_time(i) for i in range(10, 30)]
        assert times == sorted(times)
        assert all(t >= 10.0 for t in times)

    def test_position_beyond_non_growing_schedule(self):
        schedule = even_schedule(10, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            schedule.arrival_time(10)

    def test_negative_position(self):
        schedule = even_schedule(10, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            schedule.arrival_time(-1)


class TestScheduleProperties:
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=40),
                        min_size=1, max_size=5),
        trickle=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_arrivals_sorted_and_size_consistent(self, counts, trickle):
        cursor = 0.0
        segments = []
        for count in counts:
            segments.append(SegmentWindow(
                count=count, start=cursor, end=cursor + 100.0))
            cursor += 100.0
        schedule = ArrivalSchedule(segments, post_ref_daily=trickle)
        total = sum(counts)
        times = [schedule.arrival_time(i) for i in range(total)]
        assert times == sorted(times)
        # size_at at each arrival instant counts that arrival.
        for position in range(0, total, max(1, total // 7)):
            assert schedule.size_at(times[position]) >= position + 1


class TestPostRefBursts:
    REF = 10.0

    def _schedule(self, trickle=4.0, bursts=None):
        if bursts is None:
            bursts = ((self.REF + 0.6 * DAY, 6),)
        return ArrivalSchedule(
            [SegmentWindow(count=10, start=0.0, end=self.REF)],
            post_ref_daily=trickle, post_ref_bursts=bursts)

    def test_size_steps_by_burst_count_at_the_instant(self):
        schedule = self._schedule()
        at = self.REF + 0.6 * DAY
        assert schedule.size_at(at - 1e-6) == 12  # base 10 + 2 trickle
        assert schedule.size_at(at) == 18
        assert schedule.size_at(self.REF + DAY) == 20  # trickle resumes

    def test_burst_members_share_a_zero_length_pseudo_segment(self):
        schedule = self._schedule()
        at = self.REF + 0.6 * DAY
        for position in range(12, 18):
            index, window = schedule.segment_of(position)
            assert index == 2  # len(segments) + 1 + burst 0
            assert (window.start, window.end) == (at, at)
            assert schedule.arrival_time(position) == at

    def test_arrival_order_interleaves_trickle_and_bursts(self):
        schedule = self._schedule(bursts=((self.REF + 0.3 * DAY, 3),
                                          (self.REF + 0.6 * DAY, 4)))
        times = [schedule.arrival_time(p) for p in range(10, 24)]
        assert times == sorted(times)
        # extra 1..3 -> first burst, extra 5..8 -> second burst.
        assert [schedule.segment_of(10 + e)[0] for e in range(10)] == \
            [1, 2, 2, 2, 1, 3, 3, 3, 3, 1]

    def test_size_at_inverse_of_arrival_time_with_bursts(self):
        schedule = self._schedule()
        for position in range(22):
            moment = schedule.arrival_time(position)
            index, __ = schedule.segment_of(position)
            if index == 1:
                # Trickle arrivals are *timestamped* mid-window but
                # *counted* at the full inter-arrival gap (the pre-burst
                # flooring convention) — they lag by at most themselves.
                assert schedule.size_at(moment) >= position
            else:
                assert schedule.size_at(moment) >= position + 1
            assert schedule.size_at(moment - 1e-6) <= position + 1

    def test_no_burst_schedule_bit_identical(self):
        plain = even_schedule(10, 0.0, self.REF, post_ref_daily=4.0)
        empty = self._schedule(bursts=())
        for position in range(18):
            assert empty.arrival_time(position) == plain.arrival_time(position)
            assert empty.segment_of(position) == plain.segment_of(position)
        for moment in (0.0, 5.0, self.REF, self.REF + 0.7 * DAY,
                       self.REF + 3 * DAY):
            assert empty.size_at(moment) == plain.size_at(moment)

    def test_burst_before_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            self._schedule(bursts=((self.REF - 1.0, 5),))

    def test_burst_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            self._schedule(bursts=((self.REF + DAY, 0),))

    def test_burst_without_trickle_still_reachable(self):
        schedule = self._schedule(trickle=0.0)
        at = self.REF + 0.6 * DAY
        assert schedule.size_at(at) == 16
        assert schedule.arrival_time(12) == at
        with pytest.raises(ConfigurationError):
            schedule.arrival_time(16)  # beyond base + burst
