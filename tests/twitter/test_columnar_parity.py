"""Differential property suite: object vs columnar substrate bit-identity.

The columnar substrate's contract is that for every seeded population
it is *indistinguishable* from the object-per-account substrate:
generated accounts, follower-page cursoring through the API client,
and complete :class:`~repro.audit.AuditReport` outputs of all four
engines — serial and batch — must match exactly (dataclass equality
over every field, including response times and assessed-at instants).

The matrix covers >= 5 seeds x the four target archetypes the paper's
experiments are built from:

* ``organic``   — homogeneous base, no recency gradient;
* ``tilted``    — strong recency gradient (old followers inactive);
* ``purchased`` — a bought fake block spliced into the arrival order;
* ``growing``   — daily post-reference arrivals (snapshot ordering).

Populations are deliberately small (audits dominate runtime; chunk
geometry is exercised with a chunk size far below the page size, and
exhaustive boundary sweeps live in ``test_columnar_chunks.py``).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.audit import AuditRequest, ENGINE_NAMES, build_engines
from repro.core import PAPER_EPOCH, SimClock
from repro.obs.provenance import ProvenanceCollector
from repro.sched import BatchAuditScheduler
from repro.twitter import add_simple_target, build_world, columnar_twin

SEEDS = (3, 11, 29, 42, 77)

#: The four target archetypes ("personas" of an audited account).
ARCHETYPES = {
    "organic": dict(tilt=0.0, pieces=1),
    "tilted": dict(tilt=0.7, pieces=4),
    "purchased": dict(fake_burst_fraction=0.5, fake_burst_position=0.95),
    "growing": dict(tilt=0.5, daily_new_followers=30.0),
}

FOLLOWERS = 80
CHUNK_SIZE = 23  # far below any page size: every page spans chunks

PAIR_PARAMS = [(seed, name) for seed in SEEDS for name in ARCHETYPES]


@pytest.fixture(scope="module")
def detector():
    """Train the FC detector once; it is world-independent and the
    matrix would otherwise retrain it for every cell."""
    from repro.fc.engine import default_detector

    return default_detector(seed=5)


@pytest.fixture(scope="module", params=PAIR_PARAMS,
                ids=[f"seed{s}-{a}" for s, a in PAIR_PARAMS])
def world_pair(request):
    """(object world, columnar twin, target handle) for one matrix cell."""
    seed, archetype = request.param
    world = build_world(seed=seed, ref_time=PAPER_EPOCH)
    add_simple_target(world, "target", FOLLOWERS, 0.3, 0.2, 0.5,
                      **ARCHETYPES[archetype])
    twin = columnar_twin(world, chunk_size=CHUNK_SIZE)
    return world, twin, "target"


def test_generated_accounts_bit_identical(world_pair):
    world, twin, handle = world_pair
    population = world.population(handle)
    columnar = twin.population(handle)
    now = PAPER_EPOCH
    size = population.size_at(now)
    assert columnar.size_at(now) == size
    boundary = {0, 1, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1,
                2 * CHUNK_SIZE, size - 1}
    for position in sorted(p for p in boundary if 0 <= p < size):
        assert population.account_at(position, now) == \
            columnar.account_at(position, now), position
    # A later observation instant (post-reference arrivals, different
    # re-anchoring clamps) must agree too.
    later = PAPER_EPOCH + 3 * 86_400.0
    late_size = population.size_at(later)
    assert columnar.size_at(later) == late_size
    for position in (0, size - 1, late_size - 1):
        assert population.account_at(position, later) == \
            columnar.account_at(position, later), position


def test_follower_page_cursoring_bit_identical(world_pair):
    from repro.api import TwitterApiClient

    world, twin, handle = world_pair
    for count in (None, 30):
        object_client = TwitterApiClient(world, SimClock(PAPER_EPOCH))
        columnar_client = TwitterApiClient(twin, SimClock(PAPER_EPOCH))
        cursor = -1
        pages = 0
        while True:
            a = object_client.followers_ids(
                screen_name=handle, cursor=cursor, count=count)
            b = columnar_client.followers_ids(
                screen_name=handle, cursor=cursor, count=count)
            assert a == b
            pages += 1
            if a.next_cursor == 0:
                break
            cursor = a.next_cursor
        assert pages == (1 if count is None else 3)


def test_ground_truth_composition_identical(world_pair):
    world, twin, handle = world_pair
    now = PAPER_EPOCH
    assert world.population(handle).composition(now) == \
        twin.population(handle).composition(now)
    assert world.population(handle).composition(now, sample=48, seed=9) == \
        twin.population(handle).composition(now, sample=48, seed=9)


def test_serial_audit_reports_bit_identical(world_pair, detector):
    world, twin, handle = world_pair
    object_engines = build_engines(
        world, SimClock(PAPER_EPOCH), detector=detector, seed=5)
    columnar_engines = build_engines(
        twin, SimClock(PAPER_EPOCH), detector=detector, seed=5)
    assert set(object_engines) == set(ENGINE_NAMES)
    for name in ENGINE_NAMES:
        expected = object_engines[name].audit(AuditRequest(target=handle))
        actual = columnar_engines[name].audit(AuditRequest(target=handle))
        assert actual == expected, name


def test_batch_audit_digest_bit_identical(world_pair, detector):
    world, twin, handle = world_pair
    object_report = _run_batch(world, handle, detector)
    columnar_report = _run_batch(twin, handle, detector)
    assert columnar_report.digest() == object_report.digest()
    assert columnar_report.to_json() == object_report.to_json()


def test_engine_batch_knob_reports_bit_identical(world_pair, detector):
    """Scalar (``batch=False``) vs columnar-mask (``batch="auto"``) paths.

    The batch-criteria contract: on *either* substrate, every engine's
    complete report is unchanged by the classification path — the
    columnar masks are a pure acceleration, not a reinterpretation.
    """
    world, twin, handle = world_pair
    for base_world in (world, twin):
        scalar_engines = build_engines(
            base_world, SimClock(PAPER_EPOCH), detector=detector, seed=5,
            batch=False)
        columnar_engines = build_engines(
            base_world, SimClock(PAPER_EPOCH), detector=detector, seed=5,
            batch="auto")
        for name in ENGINE_NAMES:
            expected = scalar_engines[name].audit(AuditRequest(target=handle))
            actual = columnar_engines[name].audit(AuditRequest(target=handle))
            assert actual == expected, name


def test_engine_batch_knob_scheduler_digest_bit_identical(
        world_pair, detector):
    """The pinned-epoch batch path is knob-invariant too."""
    __, twin, handle = world_pair
    scalar_report = _run_batch(twin, handle, detector, engine_batch=False)
    columnar_report = _run_batch(twin, handle, detector, engine_batch="auto")
    assert columnar_report.digest() == scalar_report.digest()
    assert columnar_report.to_json() == scalar_report.to_json()


def test_provenance_is_a_pure_observation(world_pair, detector):
    """Provenance on vs off: verdicts byte-identical, only details grows.

    On both substrates, every engine's report with a collector attached
    must equal the collector-free report once ``details["provenance"]``
    is removed — recording rule fires may never perturb a verdict.
    """
    world, twin, handle = world_pair
    for base_world in (world, twin):
        baseline = build_engines(
            base_world, SimClock(PAPER_EPOCH), detector=detector, seed=5)
        collector = ProvenanceCollector()
        observed = build_engines(
            base_world, SimClock(PAPER_EPOCH), detector=detector, seed=5,
            provenance=collector)
        for name in ENGINE_NAMES:
            expected = baseline[name].audit(AuditRequest(target=handle))
            actual = observed[name].audit(AuditRequest(target=handle))
            assert "provenance" not in expected.details, name
            details = dict(actual.details)
            assert details.pop("provenance", None) is not None, name
            assert replace(actual, details=details) == expected, name
        assert len(collector.records) == len(ENGINE_NAMES)


def test_provenance_records_path_and_substrate_invariant(
        world_pair, detector):
    """The recorded rule fires are the same bits on every path.

    Object vs columnar substrate, scalar vs columnar-mask
    classification: the full :class:`AuditProvenance` records — packed
    bitmaps, verdict codes, aggregated stats — must match exactly.
    """
    world, twin, handle = world_pair
    records = {}
    for key, base_world, knob in (
            ("object-scalar", world, False),
            ("object-columnar", world, "auto"),
            ("twin-scalar", twin, False),
            ("twin-columnar", twin, "auto")):
        collector = ProvenanceCollector()
        engines = build_engines(
            base_world, SimClock(PAPER_EPOCH), detector=detector, seed=5,
            batch=knob, provenance=collector)
        for name in ENGINE_NAMES:
            engines[name].audit(AuditRequest(target=handle))
        records[key] = collector.records
    reference = records.pop("object-scalar")
    assert len(reference) == len(ENGINE_NAMES)
    for key, actual in records.items():
        assert actual == reference, key


def test_batch_digest_provenance_invariant(world_pair, detector):
    """The scheduler's batch digest never sees the collector."""
    __, twin, handle = world_pair
    baseline = _run_batch(twin, handle, detector)
    observed = _run_batch(twin, handle, detector,
                          provenance=ProvenanceCollector())
    assert observed.digest() == baseline.digest()
    assert observed.to_json() == baseline.to_json()


def test_explain_labels_agree_with_classify(world_pair):
    """``explain`` must return exactly ``classify``'s label.

    Checked on the user-field-only criteria (StatusPeople,
    Twitteraudit) over every follower in the cell; the timeline-reading
    criteria are covered by the path-invariance test above, whose
    scalar sink path routes classification through ``explain``.
    """
    from repro.analytics.statuspeople import StatusPeopleCriteria
    from repro.analytics.twitteraudit import TwitterauditCriteria
    from repro.api.endpoints import UserObject

    world, __, handle = world_pair
    population = world.population(handle)
    now = PAPER_EPOCH
    for criteria in (StatusPeopleCriteria(), TwitterauditCriteria()):
        assert criteria.rule_ids
        for position in range(population.size_at(now)):
            user = UserObject.from_account(
                population.account_at(position, now))
            label, fired = criteria.explain(user, None, now)
            assert label == criteria.classify(user, None, now)
            assert set(fired) <= set(criteria.rule_ids)


def _run_batch(world, handle, detector, engine_batch="auto",
               provenance=None):
    scheduler = BatchAuditScheduler(
        world, SimClock(PAPER_EPOCH), engines=ENGINE_NAMES,
        detector=detector, seed=5, engine_batch=engine_batch,
        provenance=provenance)
    scheduler.submit_batch([AuditRequest(target=handle)])
    return scheduler.run()
