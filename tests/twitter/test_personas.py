"""Unit tests for the persona library.

The critical invariant: ground-truth labels coincide with the paper's
behavioural definitions — every INACTIVE-labelled persona yields
accounts that never tweeted or last tweeted > 90 days ago, and every
GENUINE/FAKE persona yields recently active accounts.
"""

import pytest

from repro.core import ConfigurationError, PAPER_EPOCH, make_rng
from repro.twitter import (
    DEFAULT_LABEL_MIXES,
    INACTIVITY_HORIZON,
    Label,
    PERSONAS,
    persona_mix_from_labels,
)

NOW = PAPER_EPOCH


def sample_many(persona_name, n=100, seed=3):
    persona = PERSONAS[persona_name]
    rng = make_rng(seed, persona_name)
    return [persona.sample(rng, i + 1, f"u{i}", NOW) for i in range(n)]


def is_behaviourally_inactive(account):
    age = account.last_tweet_age(NOW)
    return age is None or age > INACTIVITY_HORIZON


class TestLabelBehaviourConsistency:
    @pytest.mark.parametrize("name", ["genuine_abandoned", "fake_egg_dormant"])
    def test_inactive_personas_are_inactive(self, name):
        assert PERSONAS[name].label is Label.INACTIVE
        assert all(is_behaviourally_inactive(a) for a in sample_many(name))

    @pytest.mark.parametrize("name", [
        "genuine_active", "genuine_newbie", "fake_classic", "fake_spammer"])
    def test_active_personas_are_active(self, name):
        assert PERSONAS[name].label is not Label.INACTIVE
        assert not any(is_behaviourally_inactive(a) for a in sample_many(name))

    @pytest.mark.parametrize("name", list(PERSONAS))
    def test_sampled_label_matches_persona(self, name):
        for account in sample_many(name, n=20):
            assert account.true_label is PERSONAS[name].label


class TestArchetypeShape:
    def test_fakes_follow_many_have_few_followers(self):
        for account in sample_many("fake_classic"):
            assert account.friends_count > account.followers_count

    def test_spammers_tweet_spammy_content_rates(self):
        for account in sample_many("fake_spammer", n=50):
            behavior = account.behavior
            assert (behavior.link_ratio > 0.9 or behavior.retweet_ratio > 0.9)
            assert behavior.duplicate_pool >= 2

    def test_genuine_active_has_reasonable_profile(self):
        accounts = sample_many("genuine_active")
        with_bio = sum(1 for a in accounts if a.has_bio())
        assert with_bio > len(accounts) * 0.6

    def test_eggs_have_empty_profiles(self):
        for account in sample_many("fake_egg_dormant"):
            assert not account.has_bio()
            assert not account.has_location()

    def test_no_account_predates_twitter(self):
        from repro.core import TWITTER_LAUNCH
        for name in PERSONAS:
            for account in sample_many(name, n=20):
                assert account.created_at >= TWITTER_LAUNCH


class TestPersonaMix:
    def test_mix_weights_sum_to_one(self):
        mix = persona_mix_from_labels(0.3, 0.2, 0.5)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_pure_fake_mix_only_fake_personas(self):
        mix = persona_mix_from_labels(0.0, 1.0, 0.0)
        assert set(mix) == set(DEFAULT_LABEL_MIXES[Label.FAKE])

    def test_rounded_percentages_accepted(self):
        # Paper tables carry rounded values summing to e.g. 100.1.
        persona_mix_from_labels(0.443, 0.099, 0.459)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            persona_mix_from_labels(-0.1, 0.5, 0.6)

    def test_bad_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            persona_mix_from_labels(0.5, 0.5, 0.5)
