"""Unit tests for lazy timeline generation."""

import pytest

from repro.core import DAY, PAPER_EPOCH, YEAR
from repro.twitter import Account, BehaviorProfile, TIMELINE_CAP, TimelineGenerator


def make_account(statuses=500, last_tweet_days_ago=1.0, **overrides):
    defaults = dict(
        user_id=42,
        screen_name="talker",
        created_at=PAPER_EPOCH - 3 * YEAR,
        statuses_count=statuses,
        last_tweet_at=(PAPER_EPOCH - last_tweet_days_ago * DAY
                       if statuses else None),
        behavior=BehaviorProfile(tweets_per_day=2.0),
    )
    defaults.update(overrides)
    return Account(**defaults)


class TestRecentTweets:
    def test_returns_requested_count(self):
        tweets = TimelineGenerator(1).recent_tweets(make_account(), 50)
        assert len(tweets) == 50

    def test_capped_by_statuses_count(self):
        tweets = TimelineGenerator(1).recent_tweets(make_account(statuses=7), 50)
        assert len(tweets) == 7

    def test_capped_at_3200(self):
        account = make_account(statuses=10_000)
        tweets = TimelineGenerator(1).recent_tweets(account, 5000)
        assert len(tweets) == TIMELINE_CAP

    def test_empty_for_never_tweeted(self):
        assert TimelineGenerator(1).recent_tweets(make_account(statuses=0), 10) == []

    def test_zero_count(self):
        assert TimelineGenerator(1).recent_tweets(make_account(), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TimelineGenerator(1).recent_tweets(make_account(), -1)

    def test_newest_first_and_first_is_last_tweet(self):
        account = make_account()
        tweets = TimelineGenerator(1).recent_tweets(account, 30)
        times = [t.created_at for t in tweets]
        assert times == sorted(times, reverse=True)
        assert times[0] == account.last_tweet_at

    def test_no_tweet_before_account_creation(self):
        account = make_account(statuses=3000)
        tweets = TimelineGenerator(1).recent_tweets(account, 200)
        assert all(t.created_at >= account.created_at for t in tweets)

    def test_tweets_attributed_to_account(self):
        tweets = TimelineGenerator(1).recent_tweets(make_account(), 5)
        assert all(t.user_id == 42 for t in tweets)


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        account = make_account()
        first = TimelineGenerator(7).recent_tweets(account, 20)
        second = TimelineGenerator(7).recent_tweets(account, 20)
        assert [t.text for t in first] == [t.text for t in second]
        assert [t.created_at for t in first] == [t.created_at for t in second]

    def test_different_seed_different_text(self):
        account = make_account()
        first = TimelineGenerator(7).recent_tweets(account, 20)
        second = TimelineGenerator(8).recent_tweets(account, 20)
        assert [t.text for t in first] != [t.text for t in second]

    def test_prefix_stability(self):
        """Fetching fewer tweets yields a prefix of the longer fetch."""
        account = make_account()
        short = TimelineGenerator(7).recent_tweets(account, 10)
        long = TimelineGenerator(7).recent_tweets(account, 40)
        assert [t.text for t in short] == [t.text for t in long[:10]]
