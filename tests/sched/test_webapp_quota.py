"""HostedCheckerApp daily quotas meeting the batch scheduler.

The hosted apps bill a *click*, not an analysis: a check served from a
result cache that a batch run already filled still charges the user's
daily allowance.  These tests pin that interaction down.
"""

import pytest

from repro.analytics import HostedCheckerApp
from repro.audit import AuditRequest
from repro.core import DAY, PAPER_EPOCH, QuotaExceededError, SimClock
from repro.sched import BatchAuditScheduler


@pytest.fixture
def scheduler(batch_world):
    return BatchAuditScheduler(
        batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
        lane_slots=1)


class TestBatchedAuditsBehindTheApp:
    def test_batch_prefills_the_cache_the_app_serves_from(self, scheduler):
        scheduler.submit("alpha")
        scheduler.run()
        app = HostedCheckerApp(scheduler.engine("statuspeople"),
                               daily_checks_per_user=10)
        session = app.authorize("curious_user")
        report = app.check(session, AuditRequest(target="alpha"))
        assert report.cached  # the batch already did the analysis

    def test_cached_answers_still_charge_the_daily_quota(self, scheduler):
        scheduler.submit("alpha")
        scheduler.run()
        app = HostedCheckerApp(scheduler.engine("statuspeople"),
                               daily_checks_per_user=2)
        session = app.authorize("curious_user")
        app.check(session, AuditRequest(target="alpha"))
        app.check(session, AuditRequest(target="alpha"))
        with pytest.raises(QuotaExceededError):
            app.check(session, AuditRequest(target="alpha"))

    def test_scheduler_runs_do_not_consume_app_quotas(self, scheduler):
        app = HostedCheckerApp(scheduler.engine("statuspeople"),
                               daily_checks_per_user=1)
        session = app.authorize("curious_user")
        scheduler.submit_batch(["alpha", "bravo", "charlie"])
        report = scheduler.run()
        assert len(report.completed) == 3
        # The batch went through the engine, not the app: the user's
        # single daily check is still available.
        app.check(session, AuditRequest(target="alpha"))

    def test_quota_resets_on_the_slot_clock_day(self, scheduler):
        scheduler.submit("alpha")
        scheduler.run()
        engine = scheduler.engine("statuspeople")
        app = HostedCheckerApp(engine, daily_checks_per_user=1)
        session = app.authorize("curious_user")
        app.check(session, AuditRequest(target="alpha"))
        with pytest.raises(QuotaExceededError):
            app.check(session, AuditRequest(target="alpha"))
        engine.client.clock.advance(DAY)
        app.check(session, AuditRequest(target="alpha"))  # fresh day

    def test_string_target_still_accepted_by_the_app(self, scheduler):
        app = HostedCheckerApp(scheduler.engine("statuspeople"))
        session = app.authorize("curious_user")
        report = app.check(session, "alpha")
        assert report.target == "alpha"
