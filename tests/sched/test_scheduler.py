"""The batch scheduler's core guarantees.

Determinism (same seed, same batch, byte-identical report — with and
without injected API faults), result equality with the serial
baseline, fairness ordering, and graceful handling of per-item
failures.
"""

import pytest

from repro.audit import AuditRequest
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.faults import named_plan
from repro.sched import BatchAuditScheduler, BatchItem
from repro.sched.scheduler import BatchAuditScheduler as _Scheduler

from .conftest import TARGETS

COMMERCIAL = ("twitteraudit", "statuspeople", "socialbakers")


def run_batch(batch_world, *, serial=False, faults=None, lane_slots=2,
              engines=COMMERCIAL, detector=None, targets=TARGETS, seed=5):
    world = batch_world()
    scheduler = BatchAuditScheduler(
        world, SimClock(PAPER_EPOCH), engines=engines, detector=detector,
        lane_slots=lane_slots, seed=seed, faults=faults, serial=serial)
    scheduler.submit_batch([AuditRequest(target=t) for t in targets])
    return scheduler.run()


class TestDeterminism:
    def test_same_seed_identical_report(self, batch_world):
        first = run_batch(batch_world)
        second = run_batch(batch_world)
        assert first.to_json() == second.to_json()
        assert first.digest() == second.digest()

    def test_same_seed_identical_under_bursty_faults(self, batch_world):
        first = run_batch(batch_world, faults=named_plan("bursty", seed=7))
        second = run_batch(batch_world, faults=named_plan("bursty", seed=7))
        assert first.digest() == second.digest()

    def test_different_seed_differs(self, batch_world):
        assert (run_batch(batch_world, seed=5).digest()
                != run_batch(batch_world, seed=6).digest())


class TestSerialEquality:
    @pytest.fixture(scope="class")
    def pair(self, batch_world):
        return (run_batch(batch_world, serial=True),
                run_batch(batch_world, serial=False))

    def test_batch_beats_serial_makespan(self, pair):
        serial, batch = pair
        assert serial.serial and not batch.serial
        assert batch.makespan_seconds < serial.makespan_seconds

    def test_percentages_identical_to_serial(self, pair):
        serial, batch = pair
        for target in TARGETS:
            serial_reports = serial.reports_for(target)
            batch_reports = batch.reports_for(target)
            assert set(serial_reports) == set(batch_reports) == set(COMMERCIAL)
            for lane in COMMERCIAL:
                a, b = serial_reports[lane], batch_reports[lane]
                assert (a.fake_pct, a.genuine_pct, a.inactive_pct) == \
                    (b.fake_pct, b.genuine_pct, b.inactive_pct), (target, lane)
                assert a.sample_size == b.sample_size

    def test_shared_cache_only_in_batch_mode(self, pair):
        serial, batch = pair
        assert serial.cache_stats == {}
        assert batch.cache_stats["hits"] > 0


class TestScheduling:
    def test_caller_clock_advances_by_makespan(self, batch_world):
        clock = SimClock(PAPER_EPOCH)
        scheduler = BatchAuditScheduler(
            batch_world(), clock, engines=("statuspeople",), lane_slots=2)
        scheduler.submit_batch(list(TARGETS))
        report = scheduler.run()
        assert clock.now() == pytest.approx(
            PAPER_EPOCH + report.makespan_seconds)

    def test_unbound_request_fans_out_to_every_lane(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=COMMERCIAL)
        items = scheduler.submit(AuditRequest(target="alpha"))
        assert [item.lane for item in items] == list(COMMERCIAL)
        assert scheduler.pending_count() == len(COMMERCIAL)

    def test_bound_request_lands_on_one_lane(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=COMMERCIAL)
        items = scheduler.submit(
            AuditRequest(target="alpha", engine="statuspeople"))
        assert [item.lane for item in items] == ["statuspeople"]

    def test_lane_missing_for_bound_engine_rejected(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",))
        with pytest.raises(ConfigurationError):
            scheduler.submit(AuditRequest(target="alpha", engine="fc"))

    def test_unknown_engine_rejected(self, batch_world):
        with pytest.raises(ConfigurationError):
            BatchAuditScheduler(batch_world(), SimClock(PAPER_EPOCH),
                                engines=("klout",))

    def test_invalid_lane_slots_rejected(self, batch_world):
        with pytest.raises(ConfigurationError):
            BatchAuditScheduler(batch_world(), SimClock(PAPER_EPOCH),
                                lane_slots=0)

    def test_failed_item_does_not_sink_the_batch(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("socialbakers",),
            lane_slots=1, sb_daily_quota=2)
        scheduler.submit_batch(list(TARGETS))
        report = scheduler.run()
        assert len(report.completed) == 2
        assert len(report.failed) == 1
        assert "QuotaExceededError" in report.failed[0].error

    def test_missing_target_reported_as_item_error(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",))
        scheduler.submit_batch(["alpha", "nobody_here"])
        report = scheduler.run()
        assert len(report.completed) == 1
        failed = report.failed
        assert len(failed) == 1
        assert failed[0].request.target == "nobody_here"


class TestFairness:
    @staticmethod
    def item(seq, target, priority=0):
        return BatchItem(
            request=AuditRequest(target=target, priority=priority,
                                 engine="statuspeople"),
            seq=seq, lane="statuspeople")

    def test_round_robin_across_targets(self):
        items = [self.item(0, "a"), self.item(1, "a"),
                 self.item(2, "b"), self.item(3, "c")]
        ordered = _Scheduler._fair_order(items)
        assert [i.request.target for i in ordered] == ["a", "b", "c", "a"]

    def test_priority_beats_admission_order(self):
        items = [self.item(0, "a"), self.item(1, "b", priority=3),
                 self.item(2, "c")]
        ordered = _Scheduler._fair_order(items)
        assert [i.request.target for i in ordered] == ["b", "a", "c"]

    def test_ordering_is_deterministic(self):
        items = [self.item(0, "a"), self.item(1, "b", priority=1),
                 self.item(2, "a", priority=1), self.item(3, "b")]
        once = _Scheduler._fair_order(list(items))
        again = _Scheduler._fair_order(list(items))
        assert [i.seq for i in once] == [i.seq for i in again] == [1, 2, 0, 3]
