"""Watermarked delta re-audits: edge cases and exactness.

The :class:`~repro.sched.incremental.DeltaAuditor` contract under test:

* cold start, TTL expiry, shrinking counts, a lost anchor and an
  oversized delta all degrade to a full audit (and leave a fresh
  watermark behind);
* an unchanged account is answered from the watermark in O(anchor
  depth) API calls with the baseline report *verbatim*;
* a merge over a census frame reproduces a fresh full audit's report
  exactly, and only complete merges may advance the watermark;
* the scheduler routes ``mode="delta"`` requests through the wrapper,
  keeps the watermark store across ``run()`` boundaries, and treats
  the mode as part of the coalescing key.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api.crawler import AnchoredHeadWalk
from repro.audit import AuditRequest, build_engines
from repro.core import DAY, PAPER_EPOCH, SimClock
from repro.faults.plan import FaultPlan, InjectorSpec
from repro.sched import (
    BatchAuditScheduler,
    DEFAULT_DELTA_TTL,
    DeltaAuditor,
    WatermarkStore,
)
from repro.twitter import add_simple_target, build_world, fake_purchase_burst

T0 = PAPER_EPOCH
HANDLE = "deltacase"


def make_world(seed=23, followers=300, daily=0.0, bursts=()):
    world = build_world(seed=seed, ref_time=T0)
    add_simple_target(world, HANDLE, followers, 0.3, 0.2, 0.5,
                      daily_new_followers=daily, post_ref_bursts=bursts)
    return world


def make_auditor(world, store=None, *, faults=None, batch="auto", **kwargs):
    engine = build_engines(world, SimClock(T0), seed=5,
                           engines=("statuspeople",),
                           faults=faults, batch=batch)["statuspeople"]
    return DeltaAuditor(engine, store if store is not None
                        else WatermarkStore(), **kwargs)


def delta_request(as_of=T0, **kwargs):
    return AuditRequest(target=HANDLE, as_of=as_of, mode="delta", **kwargs)


def test_cold_start_runs_full_audit_and_leaves_watermark():
    auditor = make_auditor(make_world())
    report = auditor.audit(delta_request())
    assert auditor.fallbacks == {"cold_start": 1}
    assert "mode" not in report.details
    assert len(auditor.store) == 1
    watermark = auditor.store.get("statuspeople", HANDLE)
    assert watermark.followers_count == report.followers_count
    assert watermark.anchor_ids
    assert watermark.as_of == T0
    assert watermark.report == report
    assert sum(watermark.verdict_counts.values()) == report.sample_size


def test_unchanged_account_replays_baseline_in_o_anchor_calls():
    auditor = make_auditor(make_world())
    baseline = auditor.audit(delta_request())
    log = auditor.engine.client.call_log
    before = log.count()
    ids_before = log.count("followers/ids")
    replay = auditor.audit(delta_request(as_of=T0 + DAY))
    # One users/show for the counter (charged to users/lookup), one
    # followers/ids head page — O(anchor depth), independent of the
    # 300-strong base.
    assert log.count() - before == 2
    assert log.count("followers/ids") - ids_before == 1
    assert replay is baseline
    assert auditor.served_unchanged == 1
    assert auditor.fallbacks == {"cold_start": 1}


def test_merge_over_census_frame_matches_fresh_full_audit():
    t1 = T0 + 0.1 * DAY
    make = lambda: make_world(daily=40.0,
                              bursts=(fake_purchase_burst(0.05, 120),))
    auditor = make_auditor(make())
    auditor.audit(delta_request())
    merged = auditor.audit(delta_request(as_of=t1))
    assert merged.details["mode"] == "delta"
    assert merged.details["new_followers"] > 100
    assert auditor.merged == 1

    fresh = build_engines(make(), SimClock(T0), seed=5,
                          engines=("statuspeople",))["statuspeople"]
    full = fresh.audit(AuditRequest(target=HANDLE, as_of=t1))
    assert merged.followers_count == full.followers_count
    assert merged.sample_size == full.sample_size
    assert merged.fake_pct == full.fake_pct
    assert merged.inactive_pct == full.inactive_pct
    assert merged.genuine_pct == full.genuine_pct

    watermark = auditor.store.get("statuspeople", HANDLE)
    assert watermark.followers_count == merged.followers_count
    assert watermark.updated_at == t1
    assert watermark.as_of == T0  # merges never refresh the TTL clock
    assert watermark.report == merged


def test_ttl_expiry_forces_full_refresh():
    auditor = make_auditor(make_world())
    auditor.audit(delta_request())
    stale = T0 + DEFAULT_DELTA_TTL + DAY
    auditor.audit(delta_request(as_of=stale))
    assert auditor.fallbacks == {"cold_start": 1, "ttl_expired": 1}
    assert auditor.store.get("statuspeople", HANDLE).as_of == stale


def test_shrinking_count_invalidates_watermark():
    auditor = make_auditor(make_world())
    auditor.audit(delta_request())
    store = auditor.store
    watermark = store.get("statuspeople", HANDLE)
    store.put(replace(watermark,
                      followers_count=watermark.followers_count + 50))
    auditor.audit(delta_request(as_of=T0 + DAY))
    assert auditor.fallbacks == {"cold_start": 1, "count_shrunk": 1}


def test_churned_anchor_falls_back_and_recaptures():
    auditor = make_auditor(make_world())
    auditor.audit(delta_request())
    store = auditor.store
    watermark = store.get("statuspeople", HANDLE)
    store.put(replace(watermark, anchor_ids=(999_999_001, 999_999_002)))
    report = auditor.audit(delta_request(as_of=T0 + DAY))
    assert auditor.fallbacks == {"cold_start": 1, "anchor_lost": 1}
    assert "mode" not in report.details
    recaptured = store.get("statuspeople", HANDLE)
    assert recaptured.anchor_ids != (999_999_001, 999_999_002)
    assert recaptured.as_of == T0 + DAY


def test_oversized_delta_prefers_full_audit():
    auditor = make_auditor(make_world(daily=40.0), max_delta=10)
    auditor.audit(delta_request())
    auditor.audit(delta_request(as_of=T0 + DAY))  # ~40 new > max_delta
    assert auditor.fallbacks == {"cold_start": 1, "delta_too_large": 1}


def test_degraded_head_walk_is_never_trusted(monkeypatch):
    auditor = make_auditor(make_world(daily=40.0))
    auditor.audit(delta_request())
    monkeypatch.setattr(
        auditor._crawler, "fetch_head_until",
        lambda *args, **kwargs: AnchoredHeadWalk(
            new_ids=[1, 2], anchor_index=None, pages=1, degraded=True))
    auditor.audit(delta_request(as_of=T0 + DAY))
    assert auditor.fallbacks == {"cold_start": 1, "head_walk_fault": 1}


def test_partial_delta_returns_degraded_report_without_watermarking(
        monkeypatch):
    auditor = make_auditor(make_world(daily=40.0), batch=False)
    auditor.audit(delta_request())
    before = auditor.store.get("statuspeople", HANDLE)
    lookup = auditor._crawler.lookup_users
    monkeypatch.setattr(
        auditor._crawler, "lookup_users",
        lambda ids: lookup(ids)[:-1])  # one profile lost to a fault
    report = auditor.audit(delta_request(as_of=T0 + DAY))
    assert report.details["mode"] == "delta"
    assert report.completeness < 1.0
    # A fault-truncated delta must never advance the watermark.
    assert auditor.store.get("statuspeople", HANDLE) is before


def test_faulted_counter_read_degrades_to_full_audit():
    plan = FaultPlan(injectors=(InjectorSpec(
        kind="transient_503", probability=1.0,
        resources=("users/lookup",)),), seed=3)
    store = WatermarkStore()
    healthy = make_auditor(make_world(), store)
    healthy.audit(delta_request())
    before = store.get("statuspeople", HANDLE)
    faulted = make_auditor(make_world(), store, faults=plan)
    # Every counter read 503s: the delta path degrades to a full audit,
    # which then meets the same weather and comes back incomplete.
    # What matters is that the watermark survives untouched for the
    # next healthy pass.
    report = faulted.audit(delta_request(as_of=T0 + DAY))
    assert faulted.fallbacks == {"head_walk_fault": 1}
    assert report.completeness < 1.0
    assert store.get("statuspeople", HANDLE) is before
    replay = healthy.audit(delta_request(as_of=T0 + 2 * DAY))
    assert replay is before.report


def test_full_mode_passes_through_but_still_watermarks():
    auditor = make_auditor(make_world())
    report = auditor.audit(AuditRequest(target=HANDLE, as_of=T0))
    assert auditor.fallbacks == {}
    assert auditor.merged == 0
    assert "mode" not in report.details
    assert len(auditor.store) == 1  # the next delta has a baseline


def test_scheduler_routes_delta_and_keeps_watermarks_across_runs():
    world = make_world()
    scheduler = BatchAuditScheduler(world, SimClock(T0),
                                    engines=("statuspeople",), seed=5,
                                    shared_cache=False)
    scheduler.submit(delta_request())
    first = scheduler.run().items[0].report
    assert len(scheduler.watermarks) == 1
    scheduler.submit(delta_request(as_of=T0 + DAY))
    second = scheduler.run().items[0].report
    assert second is first  # served from the surviving watermark


def test_mode_is_part_of_the_coalescing_key():
    world = make_world()
    scheduler = BatchAuditScheduler(world, SimClock(T0),
                                    engines=("statuspeople",), seed=5,
                                    shared_cache=False)
    scheduler.submit(AuditRequest(target=HANDLE, as_of=T0))
    scheduler.submit(delta_request())
    scheduler.submit(delta_request())  # coalesces with the delta one
    batch = scheduler.run()
    assert len(batch.items) == 2
    assert batch.coalesced_hits == 1
    assert sorted(item.request.mode for item in batch.items) == \
        ["delta", "full"]
