"""Unit tests for the shared acquisition cache."""

from repro.api.endpoints import IdsPage
from repro.sched import AcquisitionCache


def make_user(uid=7, name="Alice"):
    """A minimal profile object with the two keys the cache indexes."""

    class _User:
        user_id = uid
        screen_name = name

    return _User()


class TestProfiles:
    def test_miss_then_hit_by_id(self):
        cache = AcquisitionCache()
        assert cache.get_profile(7) is None
        user = make_user()
        cache.put_profile(user)
        assert cache.get_profile(7) is user
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lookup_by_name_is_case_insensitive(self):
        cache = AcquisitionCache()
        user = make_user(name="Alice")
        cache.put_profile(user)
        assert cache.get_profile_by_name("ALICE") is user
        assert cache.get_profile_by_name("nobody") is None


class TestPages:
    def test_exact_key_lookup(self):
        cache = AcquisitionCache()
        page = IdsPage(ids=(1, 2, 3), next_cursor=0, previous_cursor=0)
        cache.put_page("followers/ids", 7, 0, 5000, page)
        assert cache.get_page("followers/ids", 7, 0, 5000) is page
        # Any key component differing is a distinct acquisition.
        assert cache.get_page("followers/ids", 7, 5000, 5000) is None
        assert cache.get_page("friends/ids", 7, 0, 5000) is None


class TestTimelines:
    def test_timeline_stored_as_immutable_tuple(self):
        cache = AcquisitionCache()
        cache.put_timeline(7, 200, ["t1", "t2"])
        stored = cache.get_timeline(7, 200)
        assert stored == ("t1", "t2")
        assert isinstance(stored, tuple)
        assert cache.get_timeline(7, 100) is None


class TestLifecycle:
    def test_size_counts_all_stores(self):
        cache = AcquisitionCache()
        cache.put_profile(make_user())
        cache.put_page("followers/ids", 7, 0, 5000,
                       IdsPage(ids=(1,), next_cursor=0, previous_cursor=0))
        cache.put_timeline(7, 200, [])
        assert cache.size() == 3

    def test_clear_drops_entries_but_keeps_stats(self):
        cache = AcquisitionCache()
        cache.put_profile(make_user())
        cache.get_profile(7)
        cache.clear()
        assert cache.size() == 0
        assert cache.get_profile(7) is None
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 0}
