"""Duplicate-request coalescing in the batch scheduler."""

from repro.audit import AuditRequest
from repro.core import PAPER_EPOCH, SimClock
from repro.sched import BatchAuditScheduler


def make_scheduler(batch_world, **kwargs):
    kwargs.setdefault("engines", ("statuspeople",))
    return BatchAuditScheduler(batch_world(), SimClock(PAPER_EPOCH), **kwargs)


class TestCoalescing:
    def test_duplicate_submission_folds_into_pending_item(self, batch_world):
        scheduler = make_scheduler(batch_world)
        (first,) = scheduler.submit("alpha")
        (second,) = scheduler.submit("alpha")
        assert second is first
        assert first.coalesced == 1
        assert scheduler.pending_count() == 1

    def test_target_matching_is_case_insensitive(self, batch_world):
        scheduler = make_scheduler(batch_world)
        (first,) = scheduler.submit("alpha")
        (second,) = scheduler.submit("ALPHA")
        assert second is first

    def test_force_refresh_variants_do_not_coalesce(self, batch_world):
        scheduler = make_scheduler(batch_world)
        (plain,) = scheduler.submit(AuditRequest(target="alpha"))
        (refresh,) = scheduler.submit(
            AuditRequest(target="alpha", force_refresh=True))
        assert refresh is not plain
        assert scheduler.pending_count() == 2

    def test_lanes_coalesce_independently(self, batch_world):
        scheduler = make_scheduler(
            batch_world, engines=("statuspeople", "socialbakers"))
        scheduler.submit(AuditRequest(target="alpha", engine="statuspeople"))
        items = scheduler.submit(AuditRequest(target="alpha"))
        assert [item.coalesced for item in items] == [1, 0]
        assert scheduler.pending_count() == 2

    def test_report_counts_coalesced_hits(self, batch_world):
        scheduler = make_scheduler(batch_world)
        scheduler.submit("alpha")
        scheduler.submit("alpha")
        scheduler.submit("alpha")
        report = scheduler.run()
        assert report.coalesced_hits == 2
        assert len(report.items) == 1
        assert report.items[0].coalesced == 2

    def test_resubmission_after_run_is_fresh_work(self, batch_world):
        scheduler = make_scheduler(batch_world)
        (first,) = scheduler.submit("alpha")
        scheduler.run()
        (second,) = scheduler.submit("alpha")
        assert second is not first
        assert second.coalesced == 0
