"""Differential property suite: delta merges vs fresh full audits.

The delta path's exactness contract: when the baseline full audit was
a census of the engine's frame and the re-audit samples the same
frame, the merged (watermark + head-only delta) report must agree with
a fresh full audit of the re-audit instant on every verdict field —
for every engine, across seeds and target archetypes, and identically
through the serial and batch scheduler paths.

The matrix reuses the PR-7 parity geometry (5 seeds x 4 archetypes,
small populations so every engine's sample is a census) and splices a
fake-purchase burst into every cell so the delta path always has new
head arrivals to merge, not just watermark replays.
"""

from __future__ import annotations

import pytest

from repro.audit import AuditRequest, ENGINE_NAMES, build_engines
from repro.core import DAY, PAPER_EPOCH, SimClock
from repro.sched import BatchAuditScheduler, DeltaAuditor, WatermarkStore
from repro.twitter import add_simple_target, build_world, fake_purchase_burst

SEEDS = (3, 11, 29, 42, 77)

#: The four target archetypes ("personas" of an audited account).
ARCHETYPES = {
    "organic": dict(tilt=0.0, pieces=1),
    "tilted": dict(tilt=0.7, pieces=4),
    "purchased": dict(fake_burst_fraction=0.5, fake_burst_position=0.95),
    "growing": dict(tilt=0.5, daily_new_followers=30.0),
}

FOLLOWERS = 80
HANDLE = "target"

T0 = PAPER_EPOCH
#: Re-audit instant: far enough past the burst (at +0.05 d) for the
#: delta to see it, close enough that no verdict ages across the gap —
#: the full audit then samples the exact frame the merge reproduces.
T1 = T0 + 0.1 * DAY

CELL_PARAMS = [(seed, name) for seed in SEEDS for name in ARCHETYPES]
CELL_IDS = [f"seed{s}-{a}" for s, a in CELL_PARAMS]


@pytest.fixture(scope="module")
def detector():
    """Train the FC detector once; it is world-independent and the
    matrix would otherwise retrain it for every cell."""
    from repro.fc.engine import default_detector

    return default_detector(seed=5)


def _make_world(seed, archetype):
    world = build_world(seed=seed, ref_time=T0)
    add_simple_target(world, HANDLE, FOLLOWERS, 0.3, 0.2, 0.5,
                      post_ref_bursts=(fake_purchase_burst(0.05, 25),),
                      **ARCHETYPES[archetype])
    return world


@pytest.fixture(params=CELL_PARAMS, ids=CELL_IDS)
def cell(request):
    return request.param


def test_merged_delta_matches_fresh_full_audit(cell, detector):
    seed, archetype = cell
    for name in ENGINE_NAMES:
        engine = build_engines(
            _make_world(seed, archetype), SimClock(T0), detector=detector,
            seed=5, engines=(name,), sb_daily_quota=10**9)[name]
        auditor = DeltaAuditor(engine, WatermarkStore())
        auditor.audit(AuditRequest(target=HANDLE, as_of=T0, mode="delta"))
        merged = auditor.audit(
            AuditRequest(target=HANDLE, as_of=T1, mode="delta"))
        assert merged.details.get("mode") == "delta", (name, auditor.fallbacks)
        assert merged.details["new_followers"] >= 25, name

        fresh = build_engines(
            _make_world(seed, archetype), SimClock(T0), detector=detector,
            seed=5, engines=(name,), sb_daily_quota=10**9)[name]
        full = fresh.audit(AuditRequest(target=HANDLE, as_of=T1))
        assert merged.followers_count == full.followers_count, name
        assert merged.sample_size == full.sample_size, name
        assert merged.fake_pct == full.fake_pct, name
        assert merged.inactive_pct == full.inactive_pct, name
        assert merged.genuine_pct == full.genuine_pct, name


def test_scheduler_delta_digest_mode_invariant(cell, detector):
    """Serial vs batch scheduling of the same delta sweep: identical
    verdicts per lane (makespans differ by design, digests with them)."""
    seed, archetype = cell

    def sweep(serial):
        scheduler = BatchAuditScheduler(
            _make_world(seed, archetype), SimClock(T0),
            engines=ENGINE_NAMES, detector=detector, seed=5,
            serial=serial, shared_cache=False)
        scheduler.submit(AuditRequest(target=HANDLE, as_of=T0, mode="delta"))
        scheduler.run()
        scheduler.submit(AuditRequest(target=HANDLE, as_of=T1, mode="delta"))
        return scheduler.run()

    serial_batch = sweep(serial=True)
    parallel_batch = sweep(serial=False)
    serial_reports = serial_batch.reports_for(HANDLE)
    batch_reports = parallel_batch.reports_for(HANDLE)
    assert set(serial_reports) == set(batch_reports) == set(ENGINE_NAMES)
    for lane in ENGINE_NAMES:
        a, b = serial_reports[lane], batch_reports[lane]
        assert a.details.get("mode") == b.details.get("mode") == "delta", lane
        assert (a.fake_pct, a.inactive_pct, a.genuine_pct) == \
            (b.fake_pct, b.inactive_pct, b.genuine_pct), lane
        assert a.sample_size == b.sample_size, lane
        assert a.followers_count == b.followers_count, lane
        assert a.details["new_followers"] == b.details["new_followers"], lane
        assert a.details["delta_counts"] == b.details["delta_counts"], lane
