"""The unified audit request API (AuditRequest-only since PR 8)."""

import warnings

import pytest

from repro.analytics import StatusPeopleFakers
from repro.audit import AuditRequest, Auditor, coerce_request
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.fc import FakeClassifierEngine


class TestAuditRequest:
    def test_empty_target_rejected(self):
        with pytest.raises(ConfigurationError):
            AuditRequest(target="  ")

    def test_invalid_audit_index_rejected(self):
        with pytest.raises(ConfigurationError):
            AuditRequest(target="x", audit_index=0)

    def test_bound_to_binds_and_overrides(self):
        request = AuditRequest(target="x", priority=2)
        bound = request.bound_to("fc", as_of=123.0)
        assert bound.engine == "fc"
        assert bound.priority == 2
        assert bound.as_of == 123.0
        assert request.engine is None  # original untouched


class TestCoerceRequest:
    def test_string_form_removed(self):
        with pytest.raises(ConfigurationError, match="string form"):
            coerce_request("alice", engine_name="fc")

    def test_request_form_binds_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            request = coerce_request(AuditRequest(target="alice"),
                                     engine_name="fc")
        assert request == AuditRequest(target="alice", engine="fc")

    def test_mismatched_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_request(AuditRequest(target="alice", engine="fc"),
                           engine_name="statuspeople")

    def test_non_request_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_request(42, engine_name="fc")


class TestEngineEntryPoints:
    @pytest.fixture
    def tool(self, small_world):
        return StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=1)

    def test_string_audit_rejected(self, tool):
        with pytest.raises(ConfigurationError, match="string form"):
            tool.audit("smalltown")

    def test_request_audit_does_not_warn(self, tool):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = tool.audit(AuditRequest(target="smalltown"))
        assert report.target == "smalltown"
        assert report.tool == "statuspeople"

    def test_fc_rejects_string_audit(self, small_world, detector):
        fc = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector, seed=1)
        with pytest.raises(ConfigurationError, match="string form"):
            fc.audit("smalltown")
        report = fc.audit(
            AuditRequest(target="smalltown", force_refresh=True))
        assert report.tool == "fc"
        assert not report.cached  # FC keeps no result cache anyway

    def test_engines_satisfy_the_auditor_protocol(self, small_world):
        tool = StatusPeopleFakers(small_world, SimClock(PAPER_EPOCH), seed=1)
        assert isinstance(tool, Auditor)
        steps = tool.begin_audit(AuditRequest(target="smalltown"))
        assert hasattr(steps, "__next__")  # resumable generator
        steps.close()
