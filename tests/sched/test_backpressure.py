"""Admission control: bounded queues and the advisory makespan budget."""

import pytest

from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.core.errors import SchedulerSaturatedError
from repro.sched import BatchAuditScheduler, estimate_audit_seconds


class TestMaxPending:
    def test_excess_submission_rejected(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
            max_pending=2)
        scheduler.submit("alpha")
        scheduler.submit("bravo")
        with pytest.raises(SchedulerSaturatedError):
            scheduler.submit("charlie")

    def test_coalesced_duplicates_bypass_the_bound(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
            max_pending=1)
        scheduler.submit("alpha")
        (item,) = scheduler.submit("alpha")  # no new work — no rejection
        assert item.coalesced == 1

    def test_running_the_batch_frees_the_queue(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
            max_pending=1)
        scheduler.submit("alpha")
        scheduler.run()
        scheduler.submit("bravo")  # accepted again
        assert scheduler.pending_count() == 1

    def test_invalid_bound_rejected(self, batch_world):
        with pytest.raises(ConfigurationError):
            BatchAuditScheduler(batch_world(), SimClock(PAPER_EPOCH),
                                max_pending=0)


class TestMakespanBudget:
    def test_over_budget_submission_rejected(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
            lane_slots=1, makespan_budget=30.0)
        scheduler.submit("alpha")
        with pytest.raises(SchedulerSaturatedError):
            scheduler.submit("bravo")

    def test_generous_budget_admits_everything(self, batch_world):
        scheduler = BatchAuditScheduler(
            batch_world(), SimClock(PAPER_EPOCH), engines=("statuspeople",),
            makespan_budget=10_000.0)
        scheduler.submit("alpha")
        scheduler.submit("bravo")
        assert scheduler.pending_count() == 2

    def test_invalid_budget_rejected(self, batch_world):
        with pytest.raises(ConfigurationError):
            BatchAuditScheduler(batch_world(), SimClock(PAPER_EPOCH),
                                makespan_budget=0.0)


class TestEstimate:
    def test_fc_costs_most_for_a_large_account(self):
        estimates = {engine: estimate_audit_seconds(engine, 100_000)
                     for engine in ("fc", "twitteraudit", "statuspeople",
                                    "socialbakers")}
        assert max(estimates, key=estimates.get) == "fc"

    def test_monotone_in_followers_for_fc(self):
        assert (estimate_audit_seconds("fc", 500_000)
                > estimate_audit_seconds("fc", 5_000) > 0.0)

    def test_frames_cap_the_commercial_tools(self):
        # Twitteraudit only ever reads the newest 5000: beyond the
        # frame, more followers cost nothing.
        assert (estimate_audit_seconds("twitteraudit", 1_000_000)
                == estimate_audit_seconds("twitteraudit", 10_000))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_audit_seconds("klout", 1000)
