"""Fixtures for the batch-scheduler suite.

Determinism and serial-vs-batch equality tests must compare *fresh*
universes, so the central fixture is a world **builder**, not a world:
each call returns a brand-new three-target world built from the same
seed (worlds materialise lazily and audits advance their reader state).
"""

from __future__ import annotations

import pytest

from repro.core import PAPER_EPOCH
from repro.twitter import add_simple_target, build_world

#: The three audit targets every scheduler test works against.
TARGETS = ("alpha", "bravo", "charlie")


@pytest.fixture(scope="session")
def batch_world():
    """A factory for identical small multi-target worlds."""

    def build():
        world = build_world(seed=23, ref_time=PAPER_EPOCH)
        add_simple_target(world, "alpha", 9_000, 0.35, 0.15, 0.50)
        add_simple_target(world, "bravo", 6_000, 0.25, 0.30, 0.45)
        add_simple_target(world, "charlie", 4_000, 0.50, 0.10, 0.40)
        return world

    return build
