"""Unit tests for the text-table renderer."""

import pytest

from repro.core import ConfigurationError
from repro.experiments import TextTable, pct


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row("alpha", 1)
        table.add_row("b", 22.5)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert "22.5" in rendered

    def test_none_renders_as_dash(self):
        table = TextTable(["x"])
        table.add_row(None)
        assert table.render().splitlines()[-1] == "-"

    def test_cell_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row("only-one")

    def test_needs_headers(self):
        with pytest.raises(ConfigurationError):
            TextTable([])

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row(1)
        assert str(table) == table.render()


class TestPct:
    def test_formats_one_decimal(self):
        assert pct(12.34) == "12.3"

    def test_none_is_dash(self):
        assert pct(None) == "-"
