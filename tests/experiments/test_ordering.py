"""Unit tests for the Section IV-B ordering experiment."""

import pytest

from repro.core import PAPER_EPOCH, SimClock
from repro.core.errors import ConfigurationError
from repro.experiments import (
    check_head_growth,
    daily_snapshots,
    run_ordering_experiment,
)


class TestDailySnapshots:
    def test_one_snapshot_per_day_growing(self, small_world):
        clock = SimClock(PAPER_EPOCH)
        snapshots = daily_snapshots(small_world, "smalltown", 3, clock)
        assert len(snapshots) == 3
        sizes = [len(s) for s in snapshots]
        assert sizes[0] == 12_000
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_needs_two_days(self, small_world):
        with pytest.raises(ConfigurationError):
            daily_snapshots(small_world, "smalltown", 1, SimClock(PAPER_EPOCH))


class TestCheckHeadGrowth:
    def test_clean_head_growth_accepted(self):
        yesterday = (5, 4, 3, 2, 1)
        today = (7, 6) + yesterday
        new, violations = check_head_growth([yesterday, today])
        assert new == 2
        assert violations == 0

    def test_mid_list_insertion_detected(self):
        yesterday = (5, 4, 3, 2, 1)
        today = (5, 4, 99, 3, 2, 1)  # a newcomer NOT at the head
        __, violations = check_head_growth([yesterday, today])
        assert violations == 1

    def test_shrinking_list_detected(self):
        __, violations = check_head_growth([(3, 2, 1), (2, 1)])
        assert violations == 1

    def test_duplicate_new_entry_detected(self):
        yesterday = (3, 2, 1)
        today = (2, 3, 2, 1)  # "new" id already present
        __, violations = check_head_growth([yesterday, today])
        assert violations == 1

    def test_no_growth_is_fine(self):
        new, violations = check_head_growth([(2, 1), (2, 1)])
        assert (new, violations) == (0, 0)


class TestChurnBreaksTheSuffixProperty:
    def test_live_unfollows_are_flagged_as_violations(self):
        """Section II-D's caveat, exercised live: the paper's
        'new entries always at the end' check implicitly assumes no
        unfollows.  On a churning live world, the checker must flag
        day pairs where followers vanished."""
        from repro.core import DAY, HOUR, YEAR
        from repro.twitter import (
            Account,
            ChurnProcess,
            LiveSimulation,
            OrganicGrowthProcess,
            SocialGraph,
        )
        graph = SocialGraph(seed=2)
        graph.add_account(Account(
            user_id=1, screen_name="churny",
            created_at=PAPER_EPOCH - YEAR,
            statuses_count=10, last_tweet_at=PAPER_EPOCH - HOUR))
        simulation = LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=3)
        simulation.add_process(OrganicGrowthProcess(1, per_day=100.0))
        simulation.run_for(5 * DAY)  # build an audience first
        simulation.add_process(ChurnProcess(1, daily_fraction=0.2))

        snapshots = []
        for __ in range(5):
            now = simulation.now()
            ids = graph.follower_ids(
                1, 0, graph.follower_count(1, now), now)
            snapshots.append(tuple(reversed(ids)))  # newest-first
            simulation.run_for(DAY)
        __, violations = check_head_growth(snapshots)
        assert violations > 0


class TestRunExperiment:
    def test_confirms_the_papers_thesis(self, small_world):
        results, rendered = run_ordering_experiment(
            small_world, ["smalltown"], days=4)
        assert len(results) == 1
        result = results[0]
        assert result.ordering_confirmed
        assert result.new_followers_total == \
            result.final_followers - result.initial_followers
        assert "@smalltown" in rendered
        assert "yes" in rendered
