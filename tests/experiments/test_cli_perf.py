"""CLI tests for ``repro perf record`` / ``repro perf diff``.

The perf gate's contract is its exit code: record must be byte-stable,
a clean diff must exit 0, and any tolerance breach must exit 1.  One
module-scoped baseline is recorded once and shared — each record runs
the whole small workload (including detector training), so redundant
recordings dominate the suite's wall time otherwise.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError

GOLDEN = (pathlib.Path(__file__).parent.parent / "obs" / "golden"
          / "perf_record.json")

#: A three-account slice of the testbed keeps each CLI run in seconds.
SMALL = ["pinucciotwit", "RobDWaller", "davc"]


def record(out):
    assert main(["perf", "record", "--out", str(out),
                 "--targets", *SMALL, "--max-followers", "2000"]) == 0
    return out


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    return record(tmp_path_factory.mktemp("perf") / "BENCH_perf.json")


class TestPerfRecord:
    def test_record_is_byte_identical_across_runs(self, baseline, tmp_path,
                                                  capsys):
        again = record(tmp_path / "again.json")
        assert baseline.read_bytes() == again.read_bytes()
        out = capsys.readouterr().out
        assert "phase attribution (simulated seconds)" in out
        assert "critical path: lane " in out
        assert f"perf baseline written to {again}" in out

    def test_record_matches_the_committed_golden(self, baseline):
        # The byte-exact artifact of this workload is pinned in git; a
        # legitimate perf change must regenerate the golden alongside
        # benchmarks/results/BENCH_perf.json.
        assert baseline.read_text(encoding="utf-8") == \
            GOLDEN.read_text(encoding="utf-8")

    def test_record_embeds_the_workload(self, baseline):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert doc["workload"]["targets"] == SMALL
        assert doc["workload"]["max_followers"] == 2000
        assert doc["audits"] == len(SMALL) * 4

    def test_timeline_flag_prints_the_gantt(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        assert main(["perf", "record", "--out", str(out), "--timeline",
                     "--targets", *SMALL, "--max-followers", "2000"]) == 0
        assert "lane timeline  epoch=" in capsys.readouterr().out

    def test_record_rejects_unknown_handles(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown testbed"):
            main(["perf", "record", "--out", str(tmp_path / "x.json"),
                  "--targets", "nobody_at_all"])


class TestPerfDiff:
    def test_rerun_diff_exits_zero(self, baseline, capsys):
        # No --current: diff re-runs the workload the baseline embeds.
        assert main(["perf", "diff", str(baseline)]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_perturbed_makespan_exits_nonzero(self, baseline, tmp_path,
                                              capsys):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["makespan_seconds"] = round(doc["makespan_seconds"] * 1.2, 6)
        current = tmp_path / "current.json"
        current.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["perf", "diff", str(baseline),
                     "--current", str(current)]) == 1
        out = capsys.readouterr().out
        assert "BREACH makespan_seconds" in out
        assert "+20.0% outside +/-5%" in out

    def test_identical_current_exits_zero(self, baseline, capsys):
        assert main(["perf", "diff", str(baseline),
                     "--current", str(baseline)]) == 0
        assert "0 breach(es)" in capsys.readouterr().out

    def test_loosened_tolerance_forgives_the_breach(self, baseline,
                                                    tmp_path):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["makespan_seconds"] = round(doc["makespan_seconds"] * 1.2, 6)
        current = tmp_path / "current.json"
        current.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["perf", "diff", str(baseline),
                     "--current", str(current),
                     "--makespan-tol-pct", "50"]) == 0

    def test_diff_without_baseline_is_a_usage_error(self):
        with pytest.raises(ConfigurationError, match="needs a baseline"):
            main(["perf", "diff"])

    def test_diff_rejects_baseline_without_workload(self, tmp_path):
        stub = tmp_path / "old.json"
        stub.write_text('{"schema": 1}', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="no workload"):
            main(["perf", "diff", str(stub)])


class TestPerfWallclock:
    @pytest.fixture(autouse=True)
    def fast_wallclock(self, monkeypatch):
        # The real measurement trains a detector and times thousands of
        # classifications; a canned section keeps the CLI test instant
        # and deterministic.
        import repro.experiments.perf as perf_mod
        monkeypatch.setattr(
            perf_mod, "measure_fc_wallclock",
            lambda **kwargs: {"fc_rows": 2000, "repeats": 3,
                              "fc_scalar_seconds": 1.5,
                              "fc_batch_seconds": 0.15,
                              "fc_batch_speedup": 10.0})

    def test_record_with_wallclock_adds_the_section(self, tmp_path):
        out = tmp_path / "wc.json"
        assert main(["perf", "record", "--out", str(out), "--wallclock",
                     "--targets", *SMALL, "--max-followers", "2000"]) == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["wallclock"]["fc_batch_speedup"] == 10.0

    def test_record_without_the_flag_stays_wallclock_free(self, baseline):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert "wallclock" not in doc

    def test_diff_tolerates_a_wallclock_only_baseline(self, baseline,
                                                      tmp_path, capsys):
        # Baseline recorded with --wallclock, gate re-run without it:
        # the machine-local leaves are skipped, not breached.
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["wallclock"] = {"fc_scalar_seconds": 1.5}
        enriched = tmp_path / "enriched.json"
        enriched.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["perf", "diff", str(enriched),
                     "--current", str(baseline)]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_record_with_substrate_adds_the_section(self, tmp_path,
                                                    monkeypatch):
        import repro.experiments.perf as perf_mod
        monkeypatch.setattr(
            perf_mod, "measure_substrate",
            lambda **kwargs: {"followers": 1_000_000, "rows_generated": 100,
                              "page_fetch_seconds": 0.001})
        out = tmp_path / "sub.json"
        assert main(["perf", "record", "--out", str(out), "--substrate",
                     "--targets", *SMALL, "--max-followers", "2000"]) == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["substrate"]["followers"] == 1_000_000

    def test_diff_tolerates_a_substrate_only_baseline(self, baseline,
                                                      tmp_path, capsys):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["substrate"] = {"rows_generated": 100,
                            "page_fetch_seconds": 0.001}
        enriched = tmp_path / "enriched.json"
        enriched.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["perf", "diff", str(enriched),
                     "--current", str(baseline)]) == 0
        assert "all within tolerance" in capsys.readouterr().out

    def test_wallclock_tolerance_flag_reaches_the_gate(self, baseline,
                                                       tmp_path):
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        doc["wallclock"] = {"fc_scalar_seconds": 1.0}
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doc), encoding="utf-8")
        doc["wallclock"] = {"fc_scalar_seconds": 1.4}
        current = tmp_path / "cur.json"
        current.write_text(json.dumps(doc), encoding="utf-8")
        assert main(["perf", "diff", str(base),
                     "--current", str(current)]) == 0  # +40% under 200%
        assert main(["perf", "diff", str(base), "--current", str(current),
                     "--wallclock-tol-pct", "10"]) == 1
