"""End-to-end tests for the monitored fleet (repro monitor workload).

The golden alert log in ``golden/monitor_fleet_alerts.jsonl`` pins the
seeded incident scenario: the purchased-follower burst fires and
resolves, then the 503 storm pages the poll-success SLO.  The CI smoke
job diffs a CLI run against the same golden.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import ConfigurationError
from repro.experiments.monitor_fleet import FleetSpec, run_monitor_fleet
from repro.obs.live import snapshot_to_json

GOLDEN = Path(__file__).parent / "golden" / "monitor_fleet_alerts.jsonl"

#: The compressed incident scenario every test below shares: purchase
#: on day 12, a three-day 503 storm from day 20, 40 monitored days.
SPEC = FleetSpec(ticks=40, purchase_tick=12, storm_start_tick=20,
                 storm_days=3)


@pytest.fixture(scope="module")
def fleet_result():
    return run_monitor_fleet(SPEC)


def _alert_names(result):
    return [(event.kind, event.name) for event in result.alerts.events]


class TestScenario:
    def test_alert_log_matches_golden(self, fleet_result):
        assert fleet_result.alerts.to_jsonl() == GOLDEN.read_text(
            encoding="utf-8")

    def test_burst_fires_on_the_buyer_and_resolves(self, fleet_result):
        names = _alert_names(fleet_result)
        buyer = SPEC.buyer
        assert ("fire", f"burst:{buyer}") in names
        assert ("resolve", f"burst:{buyer}") in names

    def test_storm_pages_the_slo_and_recovers(self, fleet_result):
        names = _alert_names(fleet_result)
        assert ("fire", "slo:poll-success") in names
        assert ("resolve", "slo:poll-success") in names
        assert fleet_result.alerts.active() == ()

    def test_burst_triggers_an_fc_audit_of_the_buyer(self, fleet_result):
        (audit,) = fleet_result.audits
        assert audit["handle"] == SPEC.buyer
        assert audit["engine"] == "fc"
        assert audit["fake_pct"] > 10.0  # the purchase is visible

    def test_storm_degrades_polls_but_retries_absorb_most(self, fleet_result):
        assert fleet_result.poll_failures > 0
        live = fleet_result.live
        faults = live.streams()["polls.faults"].total_sum
        assert faults > fleet_result.poll_failures  # retry pressure

    def test_snapshots_cover_every_tick(self, fleet_result):
        assert len(fleet_result.snapshots) == SPEC.ticks
        final = fleet_result.snapshots[-1]
        assert final["fleet"]["audits_run"] == 1
        assert set(final["fleet"]["followers"]) == set(SPEC.handles)

    def test_summary_reads_as_an_after_action_report(self, fleet_result):
        summary = fleet_result.summary()
        assert "monitored 3 accounts for 40 days" in summary
        assert "burst:fleet_1" in summary
        assert "slo:poll-success" in summary


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, fleet_result):
        again = run_monitor_fleet(SPEC)
        assert again.alerts.to_jsonl() == fleet_result.alerts.to_jsonl()
        assert ([snapshot_to_json(s) for s in again.snapshots]
                == [snapshot_to_json(s) for s in fleet_result.snapshots])

    def test_serial_audits_do_not_perturb_telemetry(self, fleet_result):
        serial = run_monitor_fleet(
            FleetSpec(ticks=40, purchase_tick=12, storm_start_tick=20,
                      storm_days=3, serial=True))
        assert serial.alerts.to_jsonl() == fleet_result.alerts.to_jsonl()
        assert ([snapshot_to_json(s) for s in serial.snapshots]
                == [snapshot_to_json(s) for s in fleet_result.snapshots])
        assert serial.audits == fleet_result.audits


class TestSpecValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(accounts=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(ticks=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(slo_objective=1.0)
        with pytest.raises(ConfigurationError):
            FleetSpec(snapshot_every=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(purchase_tick=0)

    def test_single_account_fleet_buys_for_itself(self):
        assert FleetSpec(accounts=1).buyer == "fleet_0"


class TestMonitorCli:
    def test_fleet_run_writes_alerts_and_snapshots(self, tmp_path, capsys):
        alerts_path = tmp_path / "alerts.jsonl"
        snaps_path = tmp_path / "snaps.jsonl"
        code = main([
            "monitor", "--ticks", "40", "--cadence", "20", "--dashboard",
            "--alerts-out", str(alerts_path),
            "--snapshots-out", str(snaps_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet health" in out
        assert "monitored 3 accounts for 40 days" in out
        alert_lines = alerts_path.read_text(
            encoding="utf-8").strip().splitlines()
        assert all(json.loads(line)["name"] for line in alert_lines)
        assert len(snaps_path.read_text(
            encoding="utf-8").strip().splitlines()) == 40

    def test_without_ticks_runs_the_paper_demo(self, capsys):
        assert main(["monitor"]) == 0
        assert "ALERT: burst" in capsys.readouterr().out


class TestStatsCli:
    def test_digests_a_trace_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        spans = [
            {"span_id": 1, "parent_id": None, "name": "audit",
             "start": 0.0, "end": 2.0, "duration": 2.0, "attributes": {}},
            {"span_id": 2, "parent_id": 1, "name": "api.call",
             "start": 0.5, "end": 1.0, "duration": 0.5, "attributes": {}},
        ]
        path.write_text("".join(json.dumps(s) + "\n" for s in spans),
                        encoding="utf-8")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 spans" in out
        assert "audit" in out and "api.call" in out

    def test_tolerates_a_mid_write_truncated_tail(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        full = json.dumps({"span_id": 1, "parent_id": None, "name": "a",
                           "start": 0.0, "end": 1.0, "duration": 1.0,
                           "attributes": {}}) + "\n"
        path.write_text(full + '{"span_id": 2, "name": "b", "sta',
                        encoding="utf-8")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 spans" in out
        assert "truncated final line dropped" in out


class TestColumnarDeltaFleet:
    """The thousand-account configuration, shrunk to test scale.

    Columnar substrate + batched fleet polling + delta re-audits of the
    watchlist.  The full-size (1000-account) run is pinned by the CI
    ``delta-smoke`` job against ``golden/delta_smoke_alerts.jsonl``.
    """

    SPEC = FleetSpec(accounts=25, ticks=45, purchase_tick=12,
                     storm_start_tick=20, storm_days=3,
                     columnar=True, delta=True, reaudit_every=10)

    @pytest.fixture(scope="class")
    def delta_result(self):
        return run_monitor_fleet(self.SPEC)

    def test_burst_fires_and_first_audit_is_full(self, delta_result):
        names = _alert_names(delta_result)
        assert ("fire", f"burst:{self.SPEC.buyer}") in names
        first = delta_result.audits[0]
        assert first["handle"] == self.SPEC.buyer
        assert first["mode"] == "full"

    def test_watchlist_reaudits_go_through_the_delta_path(self, delta_result):
        modes = [audit["mode"] for audit in delta_result.audits]
        assert modes.count("delta") >= 2  # every re-audit after the first
        assert modes.count("full") == 1
        for audit in delta_result.audits:
            assert audit["handle"] == self.SPEC.buyer
            assert audit["fake_pct"] > 10.0

    def test_repeat_run_is_byte_identical(self, delta_result):
        again = run_monitor_fleet(self.SPEC)
        assert again.alerts.to_jsonl() == delta_result.alerts.to_jsonl()
        assert again.audits == delta_result.audits
        assert ([snapshot_to_json(s) for s in again.snapshots]
                == [snapshot_to_json(s) for s in delta_result.snapshots])

    def test_serial_audits_do_not_perturb_the_fleet(self, delta_result):
        serial = run_monitor_fleet(
            FleetSpec(accounts=25, ticks=45, purchase_tick=12,
                      storm_start_tick=20, storm_days=3,
                      columnar=True, delta=True, reaudit_every=10,
                      serial=True))
        assert serial.alerts.to_jsonl() == delta_result.alerts.to_jsonl()
        assert serial.audits == delta_result.audits
        assert ([snapshot_to_json(s) for s in serial.snapshots]
                == [snapshot_to_json(s) for s in delta_result.snapshots])

    def test_fleet_polls_are_paged_not_per_account(self, delta_result):
        polls = delta_result.live.streams()["polls.total"].total_sum
        assert polls == self.SPEC.accounts * self.SPEC.ticks
