"""Unit tests for the tacharts and monitor CLI subcommands."""

from repro.cli import main


class TestTaChartsCommand:
    def test_renders_three_charts(self, capsys):
        assert main(["tacharts"]) == 0
        out = capsys.readouterr().out
        assert "chart 1" in out
        assert "chart 2" in out
        assert "chart 3" in out


class TestMonitorCommand:
    def test_flags_the_buyer_only(self, capsys):
        assert main(["monitor", "--days", "12"]) == 0
        out = capsys.readouterr().out
        organic, buyer = out.split("@buyer")
        assert "@organic" in organic
        assert "no anomaly detected" in organic
        assert "ALERT" in buyer
        assert "purchased block" in buyer

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["--seed", "9", "monitor", "--days", "12"]) == 0
        out = capsys.readouterr().out
        assert "ALERT" in out
