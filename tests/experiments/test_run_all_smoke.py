"""End-to-end smoke test of the full experiment runner.

Runs every experiment (E1-E8) on reduced account subsets so the whole
pipeline — testbed construction, all four engines, every analysis — is
exercised in one pass, in about a minute.
"""

import pytest

from repro.experiments import (
    PAPER_ACCOUNTS_BY_HANDLE,
    run_all,
)

_TABLE2_SUBSET = [
    PAPER_ACCOUNTS_BY_HANDLE["giovanniallevi"],
    PAPER_ACCOUNTS_BY_HANDLE["pinucciotwit"],   # the pre-cached one
]
_TABLE3_SUBSET = [
    PAPER_ACCOUNTS_BY_HANDLE["RobDWaller"],
    PAPER_ACCOUNTS_BY_HANDLE["davc"],
    PAPER_ACCOUNTS_BY_HANDLE["grossnasty"],
    PAPER_ACCOUNTS_BY_HANDLE["janrezab"],
]


@pytest.fixture(scope="module")
def suite(detector):
    return run_all(
        seed=19,
        detector=detector,
        ordering_days=3,
        coverage_trials=20,
        table2_accounts=_TABLE2_SUBSET,
        table3_accounts=_TABLE3_SUBSET,
    )


class TestRunAllSmoke:
    def test_every_section_present(self, suite):
        assert set(suite.sections) == {
            "table1", "ordering", "table2", "table3", "acquisition",
            "purchased_burst", "deepdive", "sample_size",
        }

    def test_report_contains_every_artefact(self, suite):
        report = suite.report()
        for marker in ("Table I", "Section IV-B", "Table II", "Table III",
                       "acquisition", "E6", "E7", "E8"):
            assert marker in report

    def test_structured_results_consistent(self, suite):
        rows2 = suite.sections["table2"]
        assert len(rows2) == len(_TABLE2_SUBSET)
        rows3, analysis = suite.sections["table3"]
        assert len(rows3) == len(_TABLE3_SUBSET)
        assert analysis.ta_sb_genuine_gap >= 0.0

    def test_save_round_trip(self, suite, tmp_path):
        combined = suite.save(tmp_path / "suite")
        assert combined.exists()
        assert (tmp_path / "suite" / "table3.txt").exists()
        assert "Table III" in (tmp_path / "suite" / "table3.txt").read_text()
