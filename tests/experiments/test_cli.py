"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "GET followers/ids" in out

    def test_samplesize_with_trials(self, capsys):
        assert main(["samplesize", "--trials", "5"]) == 0
        assert "9604" in capsys.readouterr().out

    def test_burst(self, capsys):
        assert main(["burst"]) == 0
        assert "E6" in capsys.readouterr().out

    def test_deepdive(self, capsys):
        assert main(["deepdive"]) == 0
        assert "Deep Dive" in capsys.readouterr().out

    def test_acquisition(self, capsys):
        assert main(["acquisition"]) == 0
        assert "BarackObama" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "table1"]) == 0

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
