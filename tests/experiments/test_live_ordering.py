"""Unit tests for the churn-sensitivity experiment (A6)."""

import pytest

from repro.core import ConfigurationError
from repro.experiments import run_churn_sensitivity


class TestChurnSensitivity:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_churn_sensitivity(
            churn_levels=(0.0, 0.15), days=5, growth_per_day=80.0,
            warmup_days=3, seed=7)

    def test_zero_churn_reproduces_the_paper(self, outcome):
        rows, __ = outcome
        clean = next(row for row in rows if row.daily_churn == 0.0)
        assert clean.violations == 0
        assert clean.violation_rate == 0.0
        assert clean.new_followers > 0

    def test_churn_breaks_the_suffix_property(self, outcome):
        rows, __ = outcome
        churny = next(row for row in rows if row.daily_churn > 0.0)
        assert churny.violations > 0

    def test_render(self, outcome):
        __, rendered = outcome
        assert "A6" in rendered
        assert "0%" in rendered

    def test_days_validated(self):
        with pytest.raises(ConfigurationError):
            run_churn_sensitivity(days=1)
