"""Unit tests for the world self-validation module."""

import pytest

from repro.core import ConfigurationError, PAPER_EPOCH
from repro.experiments import (
    validate_population,
    validate_world,
)
from repro.twitter import add_simple_target, build_world


class TestValidatePopulation:
    def test_clean_population_passes(self, small_world):
        population = small_world.population("smalltown")
        report = validate_population(population, PAPER_EPOCH, sample=800)
        assert report.ok
        assert report.checked == 800
        assert report.label_mismatches == 0
        assert report.ordering_violations == 0
        assert report.causality_violations == 0
        assert report.composition_error < 0.06

    def test_census_when_sample_exceeds_size(self):
        world = build_world(seed=51)
        add_simple_target(world, "tinyv", 300, 0.3, 0.2, 0.5)
        report = validate_population(
            world.population("tinyv"), PAPER_EPOCH, sample=5000)
        assert report.checked == 300

    def test_empty_population_notes(self):
        world = build_world(seed=52)
        add_simple_target(world, "emptyv", 0, 0.0, 0.0, 1.0)
        report = validate_population(
            world.population("emptyv"), PAPER_EPOCH)
        assert report.checked == 0
        assert report.ok  # vacuously, with an explanatory note
        assert report.notes

    def test_burst_and_tilt_still_validate(self):
        world = build_world(seed=53)
        add_simple_target(world, "shaped", 6000, 0.5, 0.3, 0.2,
                          tilt=0.7, fake_burst_fraction=0.6,
                          fake_burst_position=0.9)
        report = validate_population(
            world.population("shaped"), PAPER_EPOCH, sample=1500)
        assert report.ok


class TestValidateWorld:
    def test_multi_target_world(self):
        world = build_world(seed=54)
        add_simple_target(world, "first", 2000, 0.4, 0.1, 0.5)
        add_simple_target(world, "second", 2000, 0.1, 0.4, 0.5)
        reports, rendered = validate_world(world, sample=600)
        assert len(reports) == 2
        assert all(report.ok for report in reports)
        assert "world validation" in rendered
        assert "FAIL" not in rendered

    def test_empty_world_rejected(self):
        world = build_world(seed=55)
        with pytest.raises(ConfigurationError):
            validate_world(world)


class TestCliValidate:
    def test_cli_subcommand(self, capsys):
        from repro.cli import main
        assert main(["validate", "--sample", "200"]) == 0
        out = capsys.readouterr().out
        assert "world validation" in out
        assert "FAIL" not in out
