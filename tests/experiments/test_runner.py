"""Unit tests for the experiment-suite result container."""

from repro.experiments import ExperimentSuiteResult


class TestExperimentSuiteResult:
    def build(self):
        suite = ExperimentSuiteResult()
        suite.add("table1", [1, 2, 3], "rendered table one")
        suite.add("ordering", {"ok": True}, "rendered ordering")
        return suite

    def test_sections_and_report(self):
        suite = self.build()
        assert set(suite.sections) == {"table1", "ordering"}
        assert suite.sections["table1"] == [1, 2, 3]
        report = suite.report()
        assert "rendered table one" in report
        assert "rendered ordering" in report

    def test_save_writes_per_section_files(self, tmp_path):
        suite = self.build()
        combined = suite.save(tmp_path / "out")
        assert combined.read_text().count("rendered") == 2
        assert (tmp_path / "out" / "table1.txt").read_text() \
            == "rendered table one\n"
        assert (tmp_path / "out" / "ordering.txt").exists()

    def test_save_creates_nested_directories(self, tmp_path):
        suite = self.build()
        combined = suite.save(tmp_path / "a" / "b")
        assert combined.exists()
