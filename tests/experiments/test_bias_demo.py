"""Unit tests for the E6/E7 bias demonstrations."""

import pytest

from repro.experiments import (
    run_deepdive_comparison,
    run_purchased_burst_demo,
)


class TestPurchasedBurst:
    @pytest.fixture(scope="class")
    def outcome(self, detector):
        return run_purchased_burst_demo(
            genuine=40_000, purchased=4_000, seed=31, detector=detector)

    def test_closed_form_matches_paper_quote(self, detector):
        result, __ = run_purchased_burst_demo(
            genuine=40_000, purchased=4_000, seed=31, detector=detector)
        # The paper quotes 100K/10K, but the ratios are identical.
        assert result.closed_form_1k_head.head_rate == 1.0
        assert result.closed_form_1k_head.whole_rate == pytest.approx(
            4_000 / 44_000)

    def test_newest_1k_frame_reports_almost_all_fake(self, outcome):
        result, __ = outcome
        assert result.sp_newest1k_fake_pct > 85.0

    def test_fc_recovers_the_truth(self, outcome):
        result, __ = outcome
        assert result.fc_fake_plus_inactive_pct == pytest.approx(
            result.true_fake_pct, abs=3.0)

    def test_head_frames_overestimate_monotonically(self, outcome):
        result, __ = outcome
        assert result.sp_newest1k_fake_pct > result.sp_default_fake_pct \
            > result.true_fake_pct

    def test_render(self, outcome):
        __, rendered = outcome
        assert "E6" in rendered
        assert "closed form" in rendered


class TestDeepDive:
    @pytest.fixture(scope="class")
    def outcome(self):
        # Needs the default 150K base: with fewer followers than the
        # Fakers 35K head frame, the two configurations coincide.
        return run_deepdive_comparison(seed=33)

    def test_deep_dive_reports_fewer_fakes(self, outcome):
        result, __ = outcome
        assert result.deep_dive_fake_pct < result.fakers_fake_pct

    def test_deep_dive_closer_to_truth(self, outcome):
        result, __ = outcome
        assert result.deep_dive_closer

    def test_render_names_both_configs(self, outcome):
        __, rendered = outcome
        assert "Deep Dive" in rendered
        assert "Fakers" in rendered
