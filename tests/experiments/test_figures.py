"""Unit tests for the Twitteraudit chart rendering (experiment F1)."""

import pytest

from repro.audit import AuditRequest
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.analytics import Twitteraudit
from repro.experiments import ascii_bar_chart, render_ta_charts, run_ta_charts


class TestAsciiBarChart:
    def test_renders_labels_and_values(self):
        chart = ascii_bar_chart(
            [("fake", 30.0), ("real", 70.0)], title="verdict")
        lines = chart.splitlines()
        assert lines[0] == "verdict"
        assert lines[1].startswith("fake")
        assert "70" in lines[2]

    def test_bars_proportional(self):
        chart = ascii_bar_chart([("a", 10.0), ("b", 40.0)], width=40)
        bars = [line.count("#") for line in chart.splitlines()]
        assert bars[1] == 4 * bars[0]

    def test_all_zero_values_render(self):
        chart = ascii_bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart([])
        with pytest.raises(ConfigurationError):
            ascii_bar_chart([("a", -1.0)])
        with pytest.raises(ConfigurationError):
            ascii_bar_chart([("a", 1.0)], width=0)


class TestTaCharts:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_ta_charts(seed=9)

    def test_all_three_charts_present(self, outcome):
        __, rendered = outcome
        assert "chart 1" in rendered
        assert "chart 2" in rendered
        assert "chart 3" in rendered
        assert "max scale of 5" in rendered

    def test_verdict_counts_cover_sample(self, outcome):
        report, __ = outcome
        verdicts = report.details["verdict_counts"]
        assert set(verdicts) == {"fake", "not sure", "real"}
        assert sum(verdicts.values()) == report.sample_size

    def test_quality_histogram_deciles(self, outcome):
        report, __ = outcome
        histogram = report.details["quality_histogram"]
        assert set(histogram) == set(range(10))
        assert sum(histogram.values()) == report.sample_size

    def test_fake_verdicts_match_fake_pct(self, outcome):
        report, __ = outcome
        verdicts = report.details["verdict_counts"]
        expected = round(100.0 * verdicts["fake"] / report.sample_size, 1)
        assert report.fake_pct == expected

    def test_rejects_foreign_reports(self, small_world, detector):
        from repro.fc import FakeClassifierEngine
        engine = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector, sample_size=200)
        with pytest.raises(ConfigurationError):
            render_ta_charts(engine.audit(AuditRequest(target="smalltown")))

    def test_runs_on_existing_world(self, small_world):
        report, rendered = run_ta_charts(
            seed=9, world=small_world, handle="smalltown")
        assert report.target == "smalltown"
        assert "chart 1" in rendered
