"""Unit tests for the Table II experiment (subset for speed)."""

import pytest

from repro.experiments import (
    ENGINE_ORDER,
    PAPER_ACCOUNTS_BY_HANDLE,
    run_response_time_experiment,
)


@pytest.fixture(scope="module")
def rows_and_report(detector):
    accounts = [
        PAPER_ACCOUNTS_BY_HANDLE["giovanniallevi"],   # fresh everywhere
        PAPER_ACCOUNTS_BY_HANDLE["pinucciotwit"],     # pre-cached by TA+SP
    ]
    return run_response_time_experiment(
        seed=13, accounts=accounts, detector=detector)


class TestTable2:
    def test_engine_order_matches_paper_columns(self):
        assert ENGINE_ORDER == (
            "fc", "twitteraudit", "statuspeople", "socialbakers")

    def test_fc_always_over_180_seconds(self, rows_and_report):
        rows, __ = rows_and_report
        for row in rows:
            assert row.seconds["fc"] > 180.0

    def test_fresh_latencies_in_paper_bands(self, rows_and_report):
        rows, __ = rows_and_report
        fresh = rows[0]
        assert 30 <= fresh.seconds["twitteraudit"] <= 70
        assert 15 <= fresh.seconds["statuspeople"] <= 40
        assert 5 <= fresh.seconds["socialbakers"] <= 16

    def test_precached_accounts_answer_in_seconds(self, rows_and_report):
        rows, __ = rows_and_report
        cached_row = rows[1]
        assert cached_row.cached["twitteraudit"]
        assert cached_row.cached["statuspeople"]
        assert cached_row.seconds["twitteraudit"] < 5
        assert cached_row.seconds["statuspeople"] < 5
        # Socialbakers performed no caching (paper, Section IV-C).
        assert not cached_row.cached["socialbakers"]

    def test_render_marks_cache_hits(self, rows_and_report):
        __, rendered = rows_and_report
        assert "Table II" in rendered
        assert "*" in rendered

    def test_prewarm_disabled_means_no_cache_hits(self, detector):
        accounts = [PAPER_ACCOUNTS_BY_HANDLE["pinucciotwit"]]
        rows, __ = run_response_time_experiment(
            seed=13, accounts=accounts, detector=detector, prewarm=False)
        assert not any(rows[0].cached.values())
