"""Unit tests for the Table I experiment."""

import pytest

from repro.api import TABLE_I
from repro.experiments import measure_rate_limit, run_table1


class TestMeasurement:
    @pytest.mark.parametrize("resource,expected", [
        ("followers/ids", 1.0),
        ("users/lookup", 12.0),
    ])
    def test_sustained_rate_matches_policy(self, resource, expected):
        measurement = measure_rate_limit(resource, windows=2.0)
        assert measurement.sustained_per_minute == \
            pytest.approx(expected, rel=0.1)

    def test_burst_is_fast(self):
        measurement = measure_rate_limit("followers/ids")
        # A full window's budget is served without rate-limit waits.
        assert measurement.burst_seconds < measurement.steady_seconds / 10

    def test_unknown_resource_rejected(self):
        with pytest.raises(KeyError):
            measure_rate_limit("nope")


class TestRunTable1:
    def test_covers_all_four_endpoints(self):
        measurements, rendered = run_table1(windows=1.2)
        assert len(measurements) == 4
        for policy in TABLE_I:
            assert f"GET {policy.resource}" in rendered

    def test_rendered_values_verbatim_from_paper(self):
        __, rendered = run_table1(windows=1.2)
        assert "5000" in rendered and "100" in rendered and "200" in rendered
        assert "12" in rendered
