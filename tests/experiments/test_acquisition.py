"""Unit tests for the acquisition-time experiment."""

import pytest

from repro.experiments import run_acquisition_experiment, validate_model


class TestValidateModel:
    def test_model_matches_simulation(self):
        result = validate_model(followers=20_000, seed=5)
        assert result.relative_error < 0.05

    def test_measured_and_predicted_positive(self):
        result = validate_model(followers=8000, seed=6)
        assert result.measured_seconds > 0
        assert result.predicted_seconds > 0


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_acquisition_experiment()

    def test_covers_three_politicians(self, outcome):
        estimates, __, rendered = outcome
        assert len(estimates) == 3
        for handle in ("@David_Cameron", "@fhollande", "@BarackObama"):
            assert handle in rendered

    def test_obama_around_27_days(self, outcome):
        estimates, __, __rendered = outcome
        obama = max(estimates, key=lambda e: e.followers)
        assert obama.followers == 41_000_000
        assert 25 <= obama.days <= 32

    def test_smaller_politicians_take_hours(self, outcome):
        estimates, __, __rendered = outcome
        for estimate in estimates:
            if estimate.followers < 1_000_000:
                assert estimate.seconds < 86_400  # under a day

    def test_empirical_validation_included(self, outcome):
        __, empirical, rendered = outcome
        assert empirical.relative_error < 0.05
        assert "synthetic validation" in rendered
