"""Unit tests for the E8 sample-size experiment."""

import pytest

from repro.experiments import (
    TOOL_SAMPLE_SIZES,
    empirical_coverage,
    run_sample_size_experiment,
)


class TestToolSampleSizes:
    def test_documented_sizes(self):
        sizes = dict(TOOL_SAMPLE_SIZES)
        assert sizes["StatusPeople Fakers"] == 700
        assert sizes["Socialbakers FFC"] == 2000
        assert sizes["Twitteraudit"] == 5000
        assert sizes["Fake Project FC"] == 9604


class TestEmpiricalCoverage:
    def test_fc_sample_size_achieves_95_percent(self):
        result = empirical_coverage(
            population=30_000, sample_size=9604, trials=60, seed=19)
        # Without-replacement sampling from a finite base does a bit
        # better than the nominal 95%.
        assert result.coverage >= 0.93

    def test_small_samples_miss_more(self):
        big = empirical_coverage(
            population=30_000, sample_size=9604, trials=40, seed=20)
        small = empirical_coverage(
            population=30_000, sample_size=400, trials=40, seed=20)
        assert small.coverage < big.coverage

    def test_truth_matches_spec(self):
        result = empirical_coverage(
            population=20_000, sample_size=2000, trials=5, seed=21)
        assert result.true_proportion == pytest.approx(0.42, abs=0.03)


class TestRunExperiment:
    def test_report_contents(self):
        coverage, rendered = run_sample_size_experiment(trials=20, seed=22)
        assert "9604" in rendered
        assert "+/-1.00%" in rendered
        assert coverage.trials == 20
