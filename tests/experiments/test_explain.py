"""Golden tests for ``repro explain`` and ``table3 --explain``.

The goldens pin the full rule-attribution rendering on a scenario
where StatusPeople and Twitteraudit disagree about the same accounts
(seed 42, @RobDWaller at 300 followers): renaming a rule id, changing
a rule's predicate, or perturbing the drill-down layout shows up as a
byte diff here.  RuleIds are wire format — see docs/observability.md.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.results import run_table3
from repro.experiments.testbed import PAPER_ACCOUNTS_BY_HANDLE

GOLDEN = Path(__file__).parent / "golden"

EXPLAIN_ARGS = ["--seed", "42", "explain", "RobDWaller",
                "--engines", "statuspeople", "twitteraudit",
                "--max-followers", "300"]

TABLE3_KWARGS = dict(
    seed=42,
    accounts=[PAPER_ACCOUNTS_BY_HANDLE["RobDWaller"]],
    max_followers=300,
    truth_sample=500,
)


def _cli_explain(capsys) -> str:
    assert main(list(EXPLAIN_ARGS)) == 0
    return capsys.readouterr().out


class TestExplainGolden:
    def test_matches_golden(self, capsys):
        expected = (GOLDEN / "explain_sp_ta.txt").read_text(encoding="utf-8")
        assert _cli_explain(capsys) == expected

    def test_sp_ta_disagree_and_every_cell_names_rules(self, capsys):
        out = _cli_explain(capsys)
        cells = re.findall(
            r"statuspeople=(\S+) vs twitteraudit=(\S+): (\d+)/\d+", out)
        assert cells, "no cross-engine disagreement cells rendered"
        assert any(a != b for a, b, __ in cells)
        # Every cell is attributed: a "<engine> rules:" line naming at
        # least one rule id follows each cell header.
        drilldown = out.split("disagreement drill-down", 1)[1]
        blocks = drilldown.split(" vs ")[1:]
        for block in blocks:
            assert re.search(r"rules: \w+\.\w+ x\d+", block), block

    def test_unknown_handle_rejected(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["explain", "nobody_we_know"])


class TestTable3ExplainGolden:
    @pytest.fixture(scope="class")
    def rendered(self, detector):
        rows, rendered = run_table3(detector=detector, explain=True,
                                    **TABLE3_KWARGS)
        return rows, rendered

    def test_matches_golden(self, rendered):
        __, text = rendered
        expected = (GOLDEN / "table3_explain.txt").read_text(encoding="utf-8")
        assert text + "\n" == expected

    def test_rows_identical_without_explain(self, rendered, detector):
        explained_rows, __ = rendered
        plain_rows, plain = run_table3(detector=detector, explain=False,
                                       **TABLE3_KWARGS)
        assert _strip_provenance(explained_rows) == plain_rows
        # The explain rendering is the plain table plus appendices.
        __, text = rendered
        assert text.startswith(plain)

    def test_drilldown_covers_all_four_engines(self, rendered):
        __, text = rendered
        assert "disagreement drill-down @RobDWaller" in text
        for engine in ("fc", "twitteraudit", "statuspeople", "socialbakers"):
            assert f"{engine:<14}" in text or f"{engine}=" in text, engine


def _strip_provenance(rows):
    """Rows with ``details["provenance"]`` removed from every report.

    Provenance is a pure observation: it may only *add* that one
    details key, never touch a verdict byte — which is exactly what the
    comparison against an explain-free run asserts.
    """
    from dataclasses import replace

    stripped = []
    for row in rows:
        reports = {}
        for tool, report in row.reports.items():
            details = dict(report.details)
            assert details.pop("provenance", None) is not None, tool
            reports[tool] = replace(report, details=details)
        stripped.append(replace(row, reports=reports))
    return stripped
