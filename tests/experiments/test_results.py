"""Unit tests for the Table III experiment (low tier for speed)."""

import pytest

from repro.experiments import (
    LOW,
    accounts_in_tiers,
    analyse_disagreement,
    run_table3,
)


@pytest.fixture(scope="module")
def low_tier(detector):
    return run_table3(
        seed=17, accounts=accounts_in_tiers(LOW), detector=detector)


class TestTable3Rows:
    def test_one_row_per_account(self, low_tier):
        rows, __ = low_tier
        assert len(rows) == 4

    def test_fc_tracks_ground_truth(self, low_tier):
        rows, __ = low_tier
        for row in rows:
            fc = row.reports["fc"]
            truth_inact, truth_fake, truth_good = row.truth
            assert fc.inactive_pct == pytest.approx(truth_inact, abs=6.0)
            assert fc.fake_pct == pytest.approx(truth_fake, abs=5.0)

    def test_fc_tracks_paper_columns(self, low_tier):
        rows, __ = low_tier
        for row in rows:
            fc = row.reports["fc"]
            paper_inact, paper_fake, paper_good = row.account.fc
            assert fc.inactive_pct == pytest.approx(paper_inact, abs=7.0)
            assert fc.genuine_pct == pytest.approx(paper_good, abs=7.0)

    def test_all_four_engines_report(self, low_tier):
        rows, __ = low_tier
        for row in rows:
            assert set(row.reports) == {
                "fc", "twitteraudit", "statuspeople", "socialbakers"}

    def test_twitteraudit_reports_no_inactive(self, low_tier):
        rows, __ = low_tier
        assert all(row.reports["twitteraudit"].inactive_pct is None
                   for row in rows)

    def test_engines_disagree(self, low_tier):
        rows, __ = low_tier
        assert any(row.disagreement() > 3.0 for row in rows)

    def test_render_includes_paper_columns(self, low_tier):
        __, rendered = low_tier
        assert "Table III" in rendered
        assert "paper FC" in rendered
        assert "@RobDWaller" in rendered


class TestDisagreementAnalysis:
    def test_analysis_fields(self, low_tier):
        rows, __ = low_tier
        analysis = analyse_disagreement(rows)
        assert -1.0 <= analysis.followers_vs_disagreement <= 1.0
        assert analysis.ta_sb_genuine_gap >= 0.0
        assert 0.0 <= analysis.sp_lowest_genuine_fraction <= 1.0

    def test_needs_three_rows(self, low_tier):
        rows, __ = low_tier
        with pytest.raises(ValueError):
            analyse_disagreement(rows[:2])

    def test_sb_inactive_below_fc(self, low_tier):
        """The paper's structural claim: SB reports far fewer inactives
        than FC because only suspicious accounts are inactivity-tested."""
        rows, __ = low_tier
        analysis = analyse_disagreement(rows)
        assert analysis.fc_minus_sb_inactive > 0.0
