"""Unit tests for the paper testbed."""

import pytest

from repro.core import PAPER_EPOCH
from repro.experiments import (
    AVERAGE,
    HIGH,
    LOW,
    PAPER_ACCOUNTS,
    PAPER_ACCOUNTS_BY_HANDLE,
    PRECACHED,
    accounts_in_tiers,
    average_accounts,
    build_paper_world,
)
from repro.experiments import testbed_spec as make_testbed_spec
from repro.twitter import Label


class TestPaperData:
    def test_twenty_accounts(self):
        assert len(PAPER_ACCOUNTS) == 20

    def test_tier_sizes_match_section_4a(self):
        assert len(accounts_in_tiers(LOW)) == 4
        assert len(average_accounts()) == 13
        assert len(accounts_in_tiers(HIGH)) == 3

    def test_tier_boundaries(self):
        for account in accounts_in_tiers(LOW):
            assert account.followers <= 10_800
        for account in average_accounts():
            assert 13_900 <= account.followers <= 79_700
        for account in accounts_in_tiers(HIGH):
            assert account.followers >= 595_000

    def test_unknown_tier_rejected(self):
        with pytest.raises(Exception):
            accounts_in_tiers("galactic")

    def test_fc_columns_sum_to_100(self):
        for account in PAPER_ACCOUNTS:
            assert sum(account.fc) == pytest.approx(100.0, abs=0.6)

    def test_table2_rows_only_for_average_tier(self):
        for account in PAPER_ACCOUNTS:
            has_times = account.response_times is not None
            assert has_times == (account.tier == AVERAGE)

    def test_obama_at_paper_scale(self):
        assert PAPER_ACCOUNTS_BY_HANDLE["BarackObama"].followers == 41_000_000

    def test_precached_handles_exist(self):
        for handles in PRECACHED.values():
            for handle in handles:
                assert handle in PAPER_ACCOUNTS_BY_HANDLE


class TestWorldConstruction:
    def test_specs_preserve_fc_composition(self):
        account = PAPER_ACCOUNTS_BY_HANDLE["giovanniallevi"]
        spec = make_testbed_spec(account, ref_time=PAPER_EPOCH)
        from repro.twitter import SyntheticWorld
        world = SyntheticWorld(seed=1, ref_time=PAPER_EPOCH)
        population = world.add_target(spec)
        comp = population.composition(PAPER_EPOCH, sample=3000)
        inact, fake, good = account.fc_fractions
        assert comp[Label.INACTIVE] == pytest.approx(inact, abs=0.04)
        assert comp[Label.FAKE] == pytest.approx(fake, abs=0.03)

    def test_mega_accounts_materialised_at_cap(self):
        account = PAPER_ACCOUNTS_BY_HANDLE["BarackObama"]
        spec = make_testbed_spec(account, ref_time=PAPER_EPOCH,
                            max_followers=150_000)
        assert spec.followers == 150_000

    def test_full_scale_on_request(self):
        account = PAPER_ACCOUNTS_BY_HANDLE["BarackObama"]
        spec = make_testbed_spec(account, ref_time=PAPER_EPOCH,
                            max_followers=None)
        assert spec.followers == 41_000_000

    def test_world_contains_requested_tiers(self):
        world = build_paper_world(7, PAPER_EPOCH, tiers=(LOW,))
        names = {p.spec.screen_name for p in world.targets()}
        assert names == {a.handle for a in accounts_in_tiers(LOW)}

    def test_targets_keep_growing(self):
        from repro.core import DAY
        world = build_paper_world(7, PAPER_EPOCH, tiers=(LOW,))
        population = world.population("janrezab")
        assert population.size_at(PAPER_EPOCH + DAY) > \
            population.size_at(PAPER_EPOCH)
