"""Unit tests for the recency-tilt sensitivity experiment (A7)."""

import pytest

from repro.core import ConfigurationError
from repro.experiments import run_tilt_sensitivity


class TestTiltSensitivity:
    @pytest.fixture(scope="class")
    def outcome(self, detector):
        return run_tilt_sensitivity(
            tilts=(0.0, 0.6), followers=15_000, seed=9, detector=detector)

    def test_fc_is_tilt_blind(self, outcome):
        rows, __ = outcome
        estimates = [row.fc_inactive for row in rows]
        assert max(estimates) - min(estimates) < 5.0

    def test_head_samplers_drop_with_tilt(self, outcome):
        rows, __ = outcome
        flat, tilted = rows
        assert tilted.sb_inactive < flat.sb_inactive
        assert tilted.fc_minus_sb > flat.fc_minus_sb

    def test_closed_form_direction(self, outcome):
        rows, __ = outcome
        flat, tilted = rows
        assert flat.predicted_sb_head_bias == pytest.approx(0.0, abs=0.1)
        assert tilted.predicted_sb_head_bias < -5.0

    def test_render(self, outcome):
        __, rendered = outcome
        assert "A7" in rendered

    def test_validation(self, detector):
        with pytest.raises(ConfigurationError):
            run_tilt_sensitivity(tilts=(), detector=detector)
        with pytest.raises(ConfigurationError):
            run_tilt_sensitivity(inactive=0.9, fake=0.2, detector=detector)
