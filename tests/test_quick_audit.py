"""Unit tests for the top-level quick_audit convenience API."""

import pytest

import repro
from repro.core import ConfigurationError


class TestQuickAudit:
    def test_single_engine_default(self):
        reports = repro.quick_audit(3000, 0.3, 0.1, 0.6, seed=3)
        assert set(reports) == {"fc"}
        report = reports["fc"]
        assert report.target == "quick_target"
        assert report.inactive_pct == pytest.approx(30.0, abs=6.0)

    def test_all_engines(self):
        reports = repro.quick_audit(3000, 0.3, 0.1, 0.6,
                                    engines="all", seed=3)
        assert set(reports) == {"fc", "twitteraudit", "statuspeople",
                                "socialbakers"}
        assert reports["twitteraudit"].inactive_pct is None

    def test_spec_kwargs_forwarded(self):
        reports = repro.quick_audit(
            50_000, 0.0, 0.5, 0.5, engines=("statuspeople",), seed=3,
            fake_burst_fraction=1.0, fake_burst_position=1.0, tilt=0.0)
        # Half the base is a fresh 25K purchased block filling the
        # 35K head frame: the head sampler reports mostly fakes.
        assert reports["statuspeople"].fake_pct > 60.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.quick_audit(1000, 0.3, 0.1, 0.6, engines=("nope",))
