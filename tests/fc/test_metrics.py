"""Unit tests for classification metrics."""

import pytest

from repro.core import ConfigurationError
from repro.fc import ConfusionMatrix, confusion


class TestConfusionMatrix:
    def test_perfect_classifier(self):
        matrix = ConfusionMatrix(tp=10, fp=0, tn=10, fn=0)
        assert matrix.accuracy == 1.0
        assert matrix.precision == 1.0
        assert matrix.recall == 1.0
        assert matrix.f1 == 1.0
        assert matrix.mcc == 1.0

    def test_inverted_classifier(self):
        matrix = ConfusionMatrix(tp=0, fp=10, tn=0, fn=10)
        assert matrix.accuracy == 0.0
        assert matrix.mcc == -1.0

    def test_known_values(self):
        matrix = ConfusionMatrix(tp=6, fp=2, tn=8, fn=4)
        assert matrix.accuracy == pytest.approx(0.7)
        assert matrix.precision == pytest.approx(0.75)
        assert matrix.recall == pytest.approx(0.6)
        assert matrix.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
        assert matrix.specificity == pytest.approx(0.8)

    def test_degenerate_denominators(self):
        matrix = ConfusionMatrix(tp=0, fp=0, tn=5, fn=0)
        assert matrix.precision == 0.0
        assert matrix.recall == 0.0
        assert matrix.f1 == 0.0
        assert matrix.mcc == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(tp=-1, fp=0, tn=0, fn=0)


class TestConfusionBuilder:
    def test_counts(self):
        matrix = confusion([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (matrix.tp, matrix.fn, matrix.tn, matrix.fp) == (2, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            confusion([1, 0], [1])

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            confusion([1, 2], [1, 0])
