"""Unit tests for the training pipeline — including the paper's key
finding: trained classifiers beat the literature's rule sets."""

import pytest

from repro.core.errors import TrainingError
from repro.fc import (
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
    compare_approaches,
    cross_validate,
    evaluate_detector,
    evaluate_ruleset,
    train_and_evaluate,
    train_detector,
)
from repro.fc.rulesets import CamisaniCalzolariRules


class TestTrainDetector:
    def test_forest_on_profile_features(self, gold):
        detector = train_detector(gold, model="forest", seed=1)
        assert not detector.needs_timeline
        matrix = evaluate_detector(detector, gold)
        assert matrix.accuracy > 0.95

    def test_tree_on_full_features(self, gold):
        detector = train_detector(
            gold, feature_set=FULL_FEATURE_SET, model="tree", seed=1)
        assert detector.needs_timeline
        assert evaluate_detector(detector, gold).accuracy > 0.95

    def test_unknown_model_rejected(self, gold):
        with pytest.raises(TrainingError):
            train_detector(gold, model="svm")

    def test_predict_empty(self, gold):
        detector = train_detector(gold, seed=1)
        assert detector.predict([], None, gold.now).shape == (0,)
        assert detector.predict_proba([], None, gold.now).shape == (0,)


class TestHeldOutEvaluation:
    def test_train_and_evaluate_generalises(self, gold):
        __, report = train_and_evaluate(gold, model="forest", seed=2)
        assert report.test_size > 0
        assert report.accuracy > 0.9
        assert report.mcc > 0.8

    def test_cross_validation_stable(self, gold):
        matrices = cross_validate(
            gold, lambda train: train_detector(train, model="tree", seed=3),
            k=4, seed=3)
        assert len(matrices) == 4
        assert all(m.accuracy > 0.85 for m in matrices)


class TestRulesVsML:
    """[12]'s conclusion: "algorithms based on classification rules do
    not succeed in detecting the fakes ... better results were achieved
    by relying on those features proposed by Academia"."""

    def test_ml_beats_every_ruleset(self, gold):
        results = compare_approaches(gold, seed=4)
        rule_scores = [m.mcc for name, m in results.items()
                       if name.startswith("rules:")]
        ml_scores = [m.mcc for name, m in results.items()
                     if name.startswith("ml:")]
        assert max(ml_scores) > max(rule_scores)
        assert min(ml_scores) > 0.7

    def test_compare_covers_all_approaches(self, gold):
        results = compare_approaches(gold, seed=4)
        assert {"rules:camisani-calzolari", "rules:socialbakers",
                "rules:stateofsearch"} <= set(results)
        assert {"ml:tree[A]", "ml:forest[A]",
                "ml:tree[A+B]", "ml:forest[A+B]"} <= set(results)

    def test_ruleset_evaluation_runs(self, gold):
        matrix = evaluate_ruleset(CamisaniCalzolariRules(), gold)
        assert matrix.total == len(gold)
