"""Scalar-vs-columnar parity: the fast path's defining property.

The columnar module earns its existence only if it is *numerically
identical* to the scalar reference — same feature matrices bit for bit,
same tree leaves, same forest probabilities, same final report digests.
These tests enforce that over several generated worlds and both
canonical feature sets, plus the LRU/`cache_info` behaviour of the
:class:`FeatureCache` and the NumPy-less fallback path.
"""

import json

import numpy as np
import pytest

from repro.audit import AuditRequest
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.fc import (
    FakeClassifierEngine,
    FeatureCache,
    FlatForest,
    FlatTree,
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
    RandomForest,
    batch_classifier,
    build_gold_standard,
    extract_feature_matrix,
    train_detector,
)
from repro.fc import columnar
from repro.fc.tree import DecisionTree
from repro.obs import Observability, observed
from repro.serde import audit_report_to_dict
from repro.twitter import add_simple_target, build_world


def report_digest(report):
    """The canonical JSON bytes of one audit report."""
    return json.dumps(audit_report_to_dict(report), sort_keys=True)


@pytest.mark.parametrize("seed", [3, 17, 92])
@pytest.mark.parametrize("feature_set",
                         [PROFILE_FEATURE_SET, FULL_FEATURE_SET],
                         ids=["profile", "full"])
class TestExtractionParity:
    def test_matrix_is_bitwise_identical(self, seed, feature_set):
        gold = build_gold_standard(n_fake=150, n_genuine=150,
                                   seed=seed, timeline_depth=25)
        scalar = feature_set.extract_matrix(
            gold.users(), gold.timelines(), gold.now)
        batch = extract_feature_matrix(
            np, feature_set, gold.users(), gold.timelines(), gold.now)
        # array_equal, not allclose: the contract is bit identity.
        assert np.array_equal(scalar, batch)
        assert batch.dtype == np.float64

    def test_verdicts_and_probabilities_match(self, seed, feature_set):
        gold = build_gold_standard(n_fake=150, n_genuine=150,
                                   seed=seed, timeline_depth=25)
        detector = train_detector(gold, feature_set=feature_set, seed=0)
        classifier = batch_classifier(detector)
        assert classifier is not None
        users, timelines, now = gold.users(), gold.timelines(), gold.now
        assert np.array_equal(detector.predict(users, timelines, now),
                              classifier.predict(users, timelines, now))
        assert np.array_equal(
            detector.predict_proba(users, timelines, now),
            classifier.predict_proba(users, timelines, now))


class TestExtractionEdgeCases:
    def test_empty_user_list_gives_empty_matrix(self):
        matrix = extract_feature_matrix(
            np, PROFILE_FEATURE_SET, [], None, PAPER_EPOCH)
        assert matrix.shape == (0, len(PROFILE_FEATURE_SET.features))

    def test_length_mismatch_is_rejected(self):
        gold = build_gold_standard(n_fake=5, n_genuine=5, seed=1)
        with pytest.raises(ConfigurationError, match="length mismatch"):
            extract_feature_matrix(
                np, PROFILE_FEATURE_SET, gold.users(), [None], gold.now)

    def test_class_b_without_timelines_is_rejected(self):
        gold = build_gold_standard(n_fake=5, n_genuine=5, seed=1)
        with pytest.raises(ConfigurationError, match="cost class B"):
            extract_feature_matrix(
                np, FULL_FEATURE_SET, gold.users(), None, gold.now)


class TestFlatInference:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(400, 6))
        y = (X[:, 0] + 0.5 * X[:, 3] > 0).astype(np.int64)
        return X, y

    def test_flat_tree_matches_recursive_descent(self, data):
        X, y = data
        tree = DecisionTree(max_depth=6, seed=3).fit(X, y)
        flat = FlatTree(np, tree)
        assert np.array_equal(tree.predict(X), flat.predict(X))
        assert np.array_equal(tree.predict_proba(X), flat.predict_proba(X))

    def test_flat_forest_matches_bagged_mean(self, data):
        X, y = data
        forest = RandomForest(n_trees=9, max_depth=5, seed=11).fit(X, y)
        flat = FlatForest(np, forest)
        assert np.array_equal(forest.predict_proba(X),
                              flat.predict_proba(X))
        assert np.array_equal(forest.predict(X), flat.predict(X))

    def test_unfitted_models_are_rejected(self):
        from repro.core.errors import TrainingError
        with pytest.raises(TrainingError, match="not fitted"):
            FlatTree(np, DecisionTree())
        with pytest.raises(TrainingError, match="not fitted"):
            FlatForest(np, RandomForest())


class TestFeatureCache:
    def test_hit_returns_the_stored_row(self):
        cache = FeatureCache()
        row = np.arange(3.0)
        cache.put(1, PAPER_EPOCH, "abc", row)
        assert cache.get(1, PAPER_EPOCH, "abc") is row
        assert (cache.hits, cache.misses) == (1, 0)

    def test_key_includes_epoch_and_fingerprint(self):
        cache = FeatureCache()
        cache.put(1, PAPER_EPOCH, "abc", np.arange(3.0))
        assert cache.get(1, PAPER_EPOCH + 1.0, "abc") is None
        assert cache.get(1, PAPER_EPOCH, "xyz") is None
        assert cache.misses == 2

    def test_lru_eviction_honours_recency(self):
        cache = FeatureCache(max_entries=2)
        cache.put(1, 0.0, "f", np.zeros(1))
        cache.put(2, 0.0, "f", np.zeros(1))
        cache.get(1, 0.0, "f")  # refresh 1; 2 is now the LRU entry
        cache.put(3, 0.0, "f", np.zeros(1))
        assert cache.get(2, 0.0, "f") is None
        assert cache.get(1, 0.0, "f") is not None
        assert cache.evictions == 1

    def test_cache_info_snapshot(self):
        cache = FeatureCache(name="probe")
        cache.put(1, 0.0, "f", np.zeros(1))
        cache.get(1, 0.0, "f")
        cache.get(2, 0.0, "f")
        info = cache.cache_info()
        assert (info.name, info.hits, info.misses,
                info.evictions, info.size) == ("probe", 1, 1, 0, 1)

    def test_hit_counter_registers_lazily(self):
        with observed() as obs:
            cache = FeatureCache(name="lazy")
            cache.put(1, 0.0, "f", np.zeros(1))
            cache.get(2, 0.0, "f")  # miss: still no series
            families = [name for name, _k, _h in obs.registry.families()]
            assert "fc_feature_cache_hits_total" not in families
            cache.get(1, 0.0, "f")
            families = [name for name, _k, _h in obs.registry.families()]
            assert "fc_feature_cache_hits_total" in families

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            FeatureCache(max_entries=0)

    def test_cached_predictions_stay_identical(self):
        gold = build_gold_standard(n_fake=120, n_genuine=120, seed=5)
        detector = train_detector(gold, seed=0)
        cold = batch_classifier(detector)
        warm = batch_classifier(detector, feature_cache=FeatureCache())
        users, now = gold.users(), gold.now
        expected = cold.predict(users, None, now)
        first = warm.predict(users, None, now)
        second = warm.predict(users, None, now)
        assert np.array_equal(expected, first)
        assert np.array_equal(expected, second)
        cache = warm.feature_cache
        assert cache.hits == len(users)
        assert cache.misses == len(users)


def build_engine(world, detector, *, batch, cache=None):
    return FakeClassifierEngine(
        world, SimClock(PAPER_EPOCH), detector, sample_size=2000,
        seed=5, batch=batch, acquisition_cache=cache)


class TestEngineParity:
    @pytest.mark.parametrize("seed", [11, 29, 53])
    def test_report_digests_are_byte_identical(self, seed, detector):
        world = build_world(seed=seed, ref_time=PAPER_EPOCH)
        add_simple_target(world, "probe", 6_000, 0.3, 0.2, 0.5)
        request = AuditRequest(target="probe")
        scalar = build_engine(world, detector, batch=False).audit(request)
        batch = build_engine(world, detector, batch="auto").audit(request)
        assert report_digest(scalar) == report_digest(batch)

    def test_auto_engine_activates_the_fast_path(self, small_world,
                                                 detector):
        engine = build_engine(small_world, detector, batch="auto")
        engine.audit(AuditRequest(target="smalltown"))
        assert engine.batch_active()

    def test_batch_false_never_activates(self, small_world, detector):
        engine = build_engine(small_world, detector, batch=False)
        engine.audit(AuditRequest(target="smalltown"))
        assert not engine.batch_active()

    def test_invalid_batch_mode_is_rejected(self, small_world, detector):
        with pytest.raises(ConfigurationError, match="batch"):
            build_engine(small_world, detector, batch="yes")

    def test_fallback_without_numpy_matches_golden(self, small_world,
                                                   detector, monkeypatch):
        reference = build_engine(
            small_world, detector, batch=False).audit(AuditRequest(target="smalltown"))
        monkeypatch.setattr(columnar, "_import_numpy", lambda: None)
        for mode in (True, "auto"):
            engine = build_engine(small_world, detector, batch=mode)
            report = engine.audit(AuditRequest(target="smalltown"))
            assert not engine.batch_active()
            assert report_digest(report) == report_digest(reference)

    def test_batch_spans_are_recorded(self, small_world, detector):
        with observed(Observability(SimClock(PAPER_EPOCH))) as obs:
            build_engine(small_world, detector,
                         batch="auto").audit(AuditRequest(target="smalltown"))
            names = {span.name for span in obs.tracer.spans()}
        assert "fc.batch_extract" in names
        assert "fc.batch_infer" in names

    def test_acquisition_cache_shares_the_feature_cache(self, small_world,
                                                        detector):
        # Sharing rides on the scheduler's pinned observation epoch:
        # both audits must extract features "as of" the same instant
        # for the (account_id, as_of, fingerprint) keys to collide.
        from repro.sched.cache import AcquisitionCache
        acq = AcquisitionCache()
        engine_a = build_engine(small_world, detector, batch="auto",
                                cache=acq)
        engine_b = build_engine(small_world, detector, batch="auto",
                                cache=acq)
        pinned = AuditRequest(target="smalltown", as_of=PAPER_EPOCH)
        engine_a.audit(pinned)
        shared = acq.feature_cache(FeatureCache)
        seeded = shared.size()
        assert seeded > 0
        engine_b.audit(pinned)
        assert shared.hits > 0  # engine_b reused engine_a's rows
        acq.clear()
        assert shared.size() == 0
