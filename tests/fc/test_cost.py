"""Unit tests for the crawling-cost model and cost-aware selection."""

import pytest

from repro.core import ConfigurationError
from repro.fc import (
    FULL_FEATURE_SET,
    PROFILE_FEATURE_SET,
    feature_crawl_cost,
    rank_by_cost,
    select_under_budget,
    train_detector,
)
from repro.fc.cost import class_b_features_present


class TestCrawlCost:
    def test_class_a_needs_only_lookups(self):
        cost = feature_crawl_cost(PROFILE_FEATURE_SET, 9604)
        assert cost.lookup_requests == 97
        assert cost.timeline_requests == 0

    def test_class_b_adds_one_timeline_per_account(self):
        cost = feature_crawl_cost(FULL_FEATURE_SET, 9604)
        assert cost.timeline_requests == 9604
        assert cost.total_requests == 97 + 9604

    def test_class_b_is_orders_of_magnitude_slower(self):
        fast = feature_crawl_cost(PROFILE_FEATURE_SET, 9604)
        slow = feature_crawl_cost(FULL_FEATURE_SET, 9604)
        # Profile-only: ~3 min.  With timelines: >13 hours of budget.
        assert fast.seconds < 300
        assert slow.seconds > 40_000

    def test_zero_accounts(self):
        cost = feature_crawl_cost(PROFILE_FEATURE_SET, 0)
        assert cost.seconds == 0.0

    def test_negative_accounts_rejected(self):
        with pytest.raises(ConfigurationError):
            feature_crawl_cost(PROFILE_FEATURE_SET, -1)

    def test_class_b_feature_listing(self):
        assert class_b_features_present(PROFILE_FEATURE_SET) == []
        assert "link_fraction" in class_b_features_present(FULL_FEATURE_SET)


class TestCostAwareSelection:
    @pytest.fixture(scope="class")
    def candidates(self, gold):
        return [
            train_detector(gold, feature_set=PROFILE_FEATURE_SET,
                           model="tree", seed=1),
            train_detector(gold, feature_set=FULL_FEATURE_SET,
                           model="forest", seed=1),
        ]

    def test_rank_sorted_by_quality(self, candidates, gold):
        rows = rank_by_cost(candidates, gold, accounts=9604)
        assert len(rows) == 2
        assert rows[0].mcc >= rows[1].mcc

    def test_tight_budget_forces_class_a(self, candidates, gold):
        chosen = select_under_budget(
            candidates, gold, accounts=9604, budget_seconds=240)
        assert chosen.cost.timeline_requests == 0

    def test_loose_budget_allows_best(self, candidates, gold):
        chosen = select_under_budget(
            candidates, gold, accounts=9604, budget_seconds=10**9)
        rows = rank_by_cost(candidates, gold, accounts=9604)
        assert chosen.mcc == rows[0].mcc

    def test_impossible_budget_rejected(self, candidates, gold):
        with pytest.raises(ConfigurationError):
            select_under_budget(
                candidates, gold, accounts=9604, budget_seconds=0.001)

    def test_invalid_budget_rejected(self, candidates, gold):
        with pytest.raises(ConfigurationError):
            select_under_budget(
                candidates, gold, accounts=9604, budget_seconds=0)
