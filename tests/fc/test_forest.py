"""Unit tests for the random forest."""

import numpy as np
import pytest

from repro.core.errors import TrainingError
from repro.fc import RandomForest

from .test_tree import separable_data


class TestFit:
    def test_learns_separable_data(self):
        X, y = separable_data()
        forest = RandomForest(n_trees=7, max_depth=3, seed=1).fit(X, y)
        assert (forest.predict(X) == y).all()

    def test_tree_count(self):
        X, y = separable_data(n=60)
        forest = RandomForest(n_trees=5, seed=1).fit(X, y)
        assert len(forest.trees) == 5

    def test_validation(self):
        with pytest.raises(TrainingError):
            RandomForest(n_trees=0)
        with pytest.raises(TrainingError):
            RandomForest().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(TrainingError):
            RandomForest().fit(np.ones((3, 2)), np.array([0, 1]))

    def test_unfitted_predict_rejected(self):
        with pytest.raises(TrainingError):
            RandomForest().predict(np.ones((1, 2)))
        with pytest.raises(TrainingError):
            RandomForest().predict_proba(np.ones((1, 2)))
        with pytest.raises(TrainingError):
            RandomForest().feature_importances()


class TestPrediction:
    def test_proba_is_mean_of_trees(self):
        X, y = separable_data(n=100, seed=3)
        forest = RandomForest(n_trees=4, max_depth=3, seed=2).fit(X, y)
        stacked = np.vstack([t.predict_proba(X) for t in forest.trees])
        assert np.allclose(forest.predict_proba(X), stacked.mean(axis=0))

    def test_majority_vote_threshold(self):
        X, y = separable_data(n=100, seed=4)
        forest = RandomForest(n_trees=9, max_depth=3, seed=5).fit(X, y)
        proba = forest.predict_proba(X)
        assert ((proba >= 0.5) == (forest.predict(X) == 1)).all()

    def test_importances_normalised(self):
        X, y = separable_data()
        forest = RandomForest(n_trees=5, max_depth=4, seed=6).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (3,)
        assert importances.sum() == pytest.approx(1.0)


class TestDeterminism:
    def test_same_seed_same_forest(self):
        X, y = separable_data(n=150, seed=8)
        first = RandomForest(n_trees=6, seed=11).fit(X, y)
        second = RandomForest(n_trees=6, seed=11).fit(X, y)
        assert np.allclose(first.predict_proba(X), second.predict_proba(X))

    def test_different_seed_differs(self):
        X, y = separable_data(n=150, seed=8)
        y = y.copy()
        y[::5] = 1 - y[::5]  # noise so trees disagree
        first = RandomForest(n_trees=6, seed=11).fit(X, y)
        second = RandomForest(n_trees=6, seed=12).fit(X, y)
        assert not np.allclose(
            first.predict_proba(X), second.predict_proba(X))
