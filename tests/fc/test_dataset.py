"""Unit tests for the gold-standard dataset builder."""

import pytest

from repro.core import ConfigurationError
from repro.fc import GoldStandard, build_gold_standard
from repro.twitter import Label


class TestBuilder:
    def test_sizes_and_labels(self):
        gold = build_gold_standard(n_fake=30, n_genuine=50, seed=1)
        assert len(gold) == 80
        labels = gold.labels()
        assert labels.sum() == 30

    def test_inactive_examples_optional(self):
        gold = build_gold_standard(
            n_fake=10, n_genuine=10, n_inactive=20, seed=1)
        three_way = gold.three_way_labels()
        assert three_way.count(Label.INACTIVE) == 20
        # Inactive examples are negatives for the binary detector.
        assert gold.labels().sum() == 10

    def test_deterministic(self):
        first = build_gold_standard(n_fake=20, n_genuine=20, seed=5)
        second = build_gold_standard(n_fake=20, n_genuine=20, seed=5)
        assert [e.user.user_id for e in first.examples] == \
            [e.user.user_id for e in second.examples]

    def test_timelines_attached(self):
        gold = build_gold_standard(n_fake=10, n_genuine=10, seed=2)
        tweeting = [e for e in gold.examples
                    if e.user.statuses_count > 0]
        assert tweeting
        assert all(len(e.timeline) > 0 for e in tweeting)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_gold_standard(n_fake=0, n_genuine=10)
        with pytest.raises(ConfigurationError):
            build_gold_standard(n_fake=10, n_genuine=10, n_inactive=-1)


class TestSplitting:
    @pytest.fixture(scope="class")
    def gold(self):
        return build_gold_standard(n_fake=40, n_genuine=40, seed=3)

    def test_split_partitions(self, gold):
        train, test = gold.split(train_fraction=0.75, seed=1)
        assert len(train) + len(test) == len(gold)
        train_ids = {e.user.user_id for e in train.examples}
        test_ids = {e.user.user_id for e in test.examples}
        assert not train_ids & test_ids

    def test_split_fraction_validated(self, gold):
        with pytest.raises(ConfigurationError):
            gold.split(train_fraction=1.0)

    def test_kfold_partitions_exactly(self, gold):
        seen = []
        for train, validation in gold.kfold(k=4, seed=2):
            assert len(train) + len(validation) == len(gold)
            seen.extend(e.user.user_id for e in validation.examples)
        assert sorted(seen) == sorted(e.user.user_id for e in gold.examples)

    def test_kfold_validated(self, gold):
        with pytest.raises(ConfigurationError):
            list(gold.kfold(k=1))

    def test_design_matrix_shape(self, gold):
        from repro.fc import PROFILE_FEATURE_SET
        matrix = gold.design_matrix(PROFILE_FEATURE_SET)
        assert matrix.shape == (80, len(PROFILE_FEATURE_SET.features))

    def test_empty_gold_rejected(self):
        with pytest.raises(Exception):
            GoldStandard([], 0.0)
