"""Unit tests for the FC engine."""

import pytest

from repro.audit import AuditRequest
from repro.core import ConfigurationError, PAPER_EPOCH, SimClock
from repro.fc import FC_SAMPLE_SIZE, FakeClassifierEngine
from repro.twitter import add_simple_target, build_world


@pytest.fixture
def engine(small_world, detector):
    clock = SimClock(PAPER_EPOCH)
    return FakeClassifierEngine(
        small_world, clock, detector, sample_size=2000, seed=5)


class TestAudit:
    def test_percentages_track_ground_truth(self, engine, small_world):
        report = engine.audit(AuditRequest(target="smalltown"))
        # smalltown's spec: 40% inactive / 10% fake / 50% genuine.
        assert report.inactive_pct == pytest.approx(40.0, abs=4.0)
        assert report.fake_pct == pytest.approx(10.0, abs=4.0)
        assert report.genuine_pct == pytest.approx(50.0, abs=5.0)

    def test_report_metadata(self, engine):
        report = engine.audit(AuditRequest(target="smalltown"))
        assert report.tool == "fc"
        assert report.sample_size == 2000
        assert not report.cached
        assert report.details["population"] == 12_000
        assert report.details["sampling"].startswith("uniform")

    def test_confidence_intervals_bracket_estimates(self, engine):
        report = engine.audit(AuditRequest(target="smalltown"))
        for key, point in (("fake_ci95", report.fake_pct),
                           ("inactive_ci95", report.inactive_pct),
                           ("genuine_ci95", report.genuine_pct)):
            low, high = report.details[key]
            assert low <= point <= high
            # n = 2000 buys roughly a +/-2.2% margin at worst.
            assert high - low <= 5.0

    def test_default_sample_size_is_9604(self, small_world, detector):
        engine = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector)
        assert engine.sample_size == FC_SAMPLE_SIZE

    def test_small_account_gets_census(self, detector):
        world = build_world(seed=3)
        add_simple_target(world, "tiny", 500, 0.2, 0.1, 0.7)
        engine = FakeClassifierEngine(
            world, SimClock(PAPER_EPOCH), detector, seed=2)
        report = engine.audit(AuditRequest(target="tiny"))
        assert report.sample_size == 500
        assert "census" in report.details["confidence"]

    def test_response_time_exceeds_180s_at_scale(self, small_world, detector):
        """The paper: FC's response time 'is always greater than 180
        seconds' — it pages the whole list and looks up 9604 profiles."""
        engine = FakeClassifierEngine(
            small_world, SimClock(PAPER_EPOCH), detector)
        report = engine.audit(AuditRequest(target="smalltown"))
        assert report.response_seconds > 180.0

    def test_no_caching_between_audits(self, engine):
        first = engine.audit(AuditRequest(target="smalltown"))
        second = engine.audit(AuditRequest(target="smalltown"))
        assert not second.cached
        assert second.response_seconds > 10  # full re-analysis, not 2-3 s

    def test_audits_use_fresh_samples(self, engine):
        first = engine.audit(AuditRequest(target="smalltown"))
        second = engine.audit(AuditRequest(target="smalltown"))
        # Same world, same truth, but independent uniform samples:
        # estimates agree within the margin, yet need not be identical.
        assert first.inactive_pct == pytest.approx(
            second.inactive_pct, abs=5.0)

    def test_unknown_target_rejected(self, engine):
        from repro.core import UnknownAccountError
        with pytest.raises(UnknownAccountError):
            engine.audit(AuditRequest(target="ghost"))

    def test_followerless_target_rejected(self, detector):
        world = build_world(seed=4)
        add_simple_target(world, "lonely", 0, 0.0, 0.0, 1.0)
        engine = FakeClassifierEngine(
            world, SimClock(PAPER_EPOCH), detector)
        with pytest.raises(ConfigurationError):
            engine.audit(AuditRequest(target="lonely"))

    def test_invalid_sample_size(self, small_world, detector):
        with pytest.raises(ConfigurationError):
            FakeClassifierEngine(
                small_world, SimClock(), detector, sample_size=0)
