"""Unit and property tests for the from-scratch decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import TrainingError
from repro.fc import DecisionTree


def separable_data(n=200, seed=0):
    """Two Gaussian blobs separable on the first feature."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-2.0, scale=0.5, size=(n // 2, 3))
    X1 = rng.normal(loc=+2.0, scale=0.5, size=(n // 2, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestFit:
    def test_learns_separable_data(self):
        X, y = separable_data()
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_single_class_yields_constant_leaf(self):
        X = np.ones((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTree().fit(X, y)
        assert (tree.predict(X) == 0).all()

    def test_constant_features_fall_back_to_majority(self):
        X = np.ones((10, 2))
        y = np.array([1] * 7 + [0] * 3)
        tree = DecisionTree().fit(X, y)
        assert (tree.predict(X) == 1).all()

    def test_depth_limit_respected(self):
        X, y = separable_data(n=400, seed=1)
        # Add label noise so deeper trees would keep splitting.
        y = y.copy()
        y[::7] = 1 - y[::7]
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_validation(self):
        with pytest.raises(TrainingError):
            DecisionTree(max_depth=0)
        with pytest.raises(TrainingError):
            DecisionTree(min_samples_split=1)
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.ones((3, 2)), np.array([0, 1, 2]))
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.ones(3), np.array([0, 1, 0]))


class TestPredict:
    def test_unfitted_rejected(self):
        with pytest.raises(TrainingError):
            DecisionTree().predict(np.ones((1, 2)))

    def test_wrong_width_rejected(self):
        X, y = separable_data()
        tree = DecisionTree().fit(X, y)
        with pytest.raises(TrainingError):
            tree.predict(np.ones((1, 5)))

    def test_proba_in_unit_interval(self):
        X, y = separable_data()
        tree = DecisionTree(max_depth=2).fit(X, y)
        proba = tree.predict_proba(X)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_proba_consistent_with_labels(self):
        X, y = separable_data()
        tree = DecisionTree(max_depth=3).fit(X, y)
        labels = tree.predict(X)
        proba = tree.predict_proba(X)
        assert ((proba >= 0.5) == (labels == 1)).all()


class TestIntrospection:
    def test_feature_importances_sum_to_one(self):
        X, y = separable_data()
        tree = DecisionTree(max_depth=4).fit(X, y)
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > 0  # the separating feature is used

    def test_rules_render(self):
        X, y = separable_data()
        tree = DecisionTree(max_depth=2).fit(X, y)
        rules = tree.rules()
        assert rules and all("=>" in r for r in rules)


class TestDeterminism:
    def test_same_seed_same_tree(self):
        X, y = separable_data(n=300, seed=2)
        first = DecisionTree(max_depth=5, max_features=2, seed=9).fit(X, y)
        second = DecisionTree(max_depth=5, max_features=2, seed=9).fit(X, y)
        assert (first.predict(X) == second.predict(X)).all()


class TestProperties:
    @given(
        n=st.integers(min_value=4, max_value=60),
        d=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_train_accuracy_beats_majority(self, n, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        y = rng.integers(0, 2, size=n)
        tree = DecisionTree(max_depth=6).fit(X, y)
        predictions = tree.predict(X)
        assert set(np.unique(predictions)) <= {0, 1}
        majority = max(np.mean(y), 1 - np.mean(y))
        accuracy = np.mean(predictions == y)
        assert accuracy >= majority - 1e-9
