"""Unit tests for greedy budgeted feature selection."""

import pytest

from repro.core import ConfigurationError
from repro.fc import FEATURES_BY_NAME, evaluate_detector
from repro.fc.features import CLASS_A_FEATURES, CLASS_B, FEATURES
from repro.fc.optimizer import (
    GreedyFeatureSelector,
    affordable_features,
    optimize_detector,
)


@pytest.fixture(scope="module")
def steps(gold):
    selector = GreedyFeatureSelector(model="tree", seed=3)
    return selector.path(gold, max_features=6)


@pytest.fixture(scope="module")
def class_a_steps(gold):
    selector = GreedyFeatureSelector(
        model="tree", seed=3, candidates=CLASS_A_FEATURES)
    return selector.path(gold, max_features=6)


class TestGreedyPath:
    def test_monotone_mcc(self, steps):
        mccs = [step.mcc for step in steps]
        assert all(b > a for a, b in zip(mccs, mccs[1:]))

    def test_feature_names_accumulate(self, steps):
        for index, step in enumerate(steps):
            assert len(step.feature_names) == index + 1
            assert step.added_feature == step.feature_names[-1]

    def test_first_pick_is_strong(self, steps):
        assert steps[0].mcc > 0.7

    def test_costs_reflect_cost_classes(self, steps, class_a_steps):
        for step in list(steps) + list(class_a_steps):
            has_b = any(
                FEATURES_BY_NAME[name].cost_class == CLASS_B
                for name in step.feature_names)
            if has_b:
                assert step.crawl_seconds > 10_000
            else:
                assert step.crawl_seconds < 300

    def test_class_a_path_reaches_high_quality(self, class_a_steps):
        """[12]'s finding: profile features alone combine into an
        excellent detector, even if no single one dominates."""
        assert class_a_steps[-1].mcc > 0.9

    def test_stops_when_no_improvement(self, gold):
        selector = GreedyFeatureSelector(model="tree", seed=3)
        full_path = selector.path(gold)
        assert len(full_path) < len(FEATURES)

    def test_tolerance_validated(self):
        with pytest.raises(ConfigurationError):
            GreedyFeatureSelector(tolerance=-0.1)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyFeatureSelector(candidates=())


class TestFrontierAndBudget:
    def test_frontier_strictly_improves(self, steps):
        selector = GreedyFeatureSelector(model="tree", seed=3)
        frontier = selector.pareto_frontier(steps)
        costs = [step.crawl_seconds for step in frontier]
        mccs = [step.mcc for step in frontier]
        assert costs == sorted(costs)
        assert mccs == sorted(mccs)

    def test_budget_pick_is_affordable_and_best(self, class_a_steps):
        selector = GreedyFeatureSelector(model="tree", seed=3)
        chosen = selector.best_under_budget(class_a_steps,
                                            budget_seconds=240)
        assert chosen.crawl_seconds <= 240
        for step in class_a_steps:
            if step.crawl_seconds <= 240:
                assert chosen.mcc >= step.mcc

    def test_impossible_budget(self, class_a_steps):
        selector = GreedyFeatureSelector(model="tree", seed=3)
        with pytest.raises(ConfigurationError):
            selector.best_under_budget(class_a_steps, budget_seconds=1e-6)
        with pytest.raises(ConfigurationError):
            selector.best_under_budget(class_a_steps, budget_seconds=0)


class TestAffordableFeatures:
    def test_tight_budget_excludes_class_b(self):
        kept = affordable_features(240.0, 9604)
        assert kept
        assert all(f.cost_class != CLASS_B for f in kept)

    def test_loose_budget_keeps_everything(self):
        assert len(affordable_features(1e9, 9604)) == len(FEATURES)

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            affordable_features(0.0, 9604)


class TestOptimizeDetector:
    def test_budgeted_detector_is_class_a_and_good(self, gold):
        detector = optimize_detector(gold, budget_seconds=240, seed=3)
        assert not detector.needs_timeline
        assert evaluate_detector(detector, gold).mcc > 0.85

    def test_unbounded_budget_at_least_as_good(self, gold):
        cheap = optimize_detector(gold, budget_seconds=240, seed=3)
        rich = optimize_detector(gold, budget_seconds=1e9, seed=3)
        assert evaluate_detector(rich, gold).mcc >= \
            evaluate_detector(cheap, gold).mcc - 0.02
