"""Unit tests for the literature rule sets."""

import pytest

from repro.api import UserObject
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, YEAR
from repro.fc import (
    BASELINE_RULESETS,
    CamisaniCalzolariRules,
    SocialbakersCriteria,
    StateOfSearchSignals,
)
from repro.twitter import Tweet

NOW = PAPER_EPOCH


def make_user(**overrides):
    defaults = dict(
        user_id=1, screen_name="u", name="User",
        created_at=PAPER_EPOCH - YEAR,
        description="a bio", location="Rome", url="http://example.org",
        default_profile_image=False, verified=False,
        followers_count=120, friends_count=150, statuses_count=400,
        last_status_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return UserObject(**defaults)


def make_tweets(texts):
    return [Tweet(tweet_id=i, user_id=1, created_at=NOW - i, text=t)
            for i, t in enumerate(texts)]


HUMAN_TWEETS = make_tweets(
    [f"nice day in town @friend{i} #life" for i in range(10)])


class TestCamisaniCalzolari:
    def test_well_formed_human_passes(self):
        rules = CamisaniCalzolariRules()
        assert not rules.is_fake(make_user(), HUMAN_TWEETS, NOW)

    def test_empty_profile_fails(self):
        rules = CamisaniCalzolariRules()
        user = make_user(name="", description="", location="", url="",
                         default_profile_image=True,
                         followers_count=2, statuses_count=1)
        assert rules.is_fake(user, [], NOW)

    def test_score_monotone_in_satisfied_criteria(self):
        rules = CamisaniCalzolariRules()
        rich = rules.evaluate(make_user(), HUMAN_TWEETS, NOW)
        poor = rules.evaluate(
            make_user(description="", url=""), HUMAN_TWEETS, NOW)
        assert rich.score > poor.score
        assert "has_bio" in rich.fired
        assert "has_bio" not in poor.fired


class TestSocialbakersCriteria:
    def test_clean_account_is_genuine(self):
        criteria = SocialbakersCriteria()
        assert criteria.classify(make_user(), HUMAN_TWEETS, NOW) == "genuine"

    def test_ff_ratio_rule(self):
        criteria = SocialbakersCriteria()
        user = make_user(followers_count=2, friends_count=100)
        verdict = criteria.evaluate(user, HUMAN_TWEETS, NOW)
        assert "ff_ratio_50" in verdict.fired

    def test_spam_phrases_rule(self):
        criteria = SocialbakersCriteria()
        spam = make_tweets(["make money now"] * 4 + ["hello"] * 6)
        verdict = criteria.evaluate(make_user(), spam, NOW)
        assert "spam_phrases_30pct" in verdict.fired

    def test_repeated_tweets_rule(self):
        criteria = SocialbakersCriteria()
        repeats = make_tweets(["the exact same"] * 4 + ["other"])
        verdict = criteria.evaluate(make_user(), repeats, NOW)
        assert "repeated_tweets_3x" in verdict.fired

    def test_retweet_and_link_rules(self):
        criteria = SocialbakersCriteria()
        retweets = make_tweets([f"RT @a: thing {i}" for i in range(20)])
        assert "retweets_90pct" in criteria.evaluate(
            make_user(), retweets, NOW).fired
        links = make_tweets([f"look http://t.co/{i}" for i in range(20)])
        assert "links_90pct" in criteria.evaluate(
            make_user(), links, NOW).fired

    def test_never_tweeted_rule(self):
        criteria = SocialbakersCriteria()
        user = make_user(statuses_count=0, last_status_at=None)
        assert "never_tweeted" in criteria.evaluate(user, [], NOW).fired

    def test_old_default_image_rule(self):
        criteria = SocialbakersCriteria()
        old = make_user(default_profile_image=True)
        assert "old_default_image" in criteria.evaluate(
            old, HUMAN_TWEETS, NOW).fired
        young = make_user(default_profile_image=True,
                          created_at=PAPER_EPOCH - 30 * DAY)
        assert "old_default_image" not in criteria.evaluate(
            young, HUMAN_TWEETS, NOW).fired

    def test_empty_profile_following_rule(self):
        criteria = SocialbakersCriteria()
        user = make_user(description="", location="", friends_count=150)
        assert "empty_profile_following_100" in criteria.evaluate(
            user, HUMAN_TWEETS, NOW).fired

    def test_inactivity_rules(self):
        assert SocialbakersCriteria.is_inactive(
            make_user(statuses_count=2), NOW)
        assert SocialbakersCriteria.is_inactive(
            make_user(last_status_at=PAPER_EPOCH - 91 * DAY), NOW)
        assert not SocialbakersCriteria.is_inactive(make_user(), NOW)

    def test_inactive_only_reachable_via_suspicion(self):
        """The published flow: non-suspicious inactives count genuine."""
        criteria = SocialbakersCriteria()
        dormant = make_user(last_status_at=PAPER_EPOCH - YEAR,
                            statuses_count=50)
        assert criteria.classify(dormant, HUMAN_TWEETS, NOW) == "genuine"

    def test_suspicious_and_inactive_classified_inactive(self):
        criteria = SocialbakersCriteria()
        egg = make_user(statuses_count=0, last_status_at=None,
                        description="", location="",
                        friends_count=500, followers_count=2,
                        default_profile_image=True)
        assert criteria.classify(egg, [], NOW) == "inactive"

    def test_suspicious_and_active_classified_fake(self):
        criteria = SocialbakersCriteria()
        bot = make_user(description="", location="",
                        friends_count=900, followers_count=3)
        spam = make_tweets(["work from home http://t.co/x"] * 20)
        assert criteria.classify(bot, spam, NOW) == "fake"


class TestStateOfSearch:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            StateOfSearchSignals(min_signals=0)
        with pytest.raises(ConfigurationError):
            StateOfSearchSignals(min_signals=8)

    def test_obvious_bot_detected(self):
        signals = StateOfSearchSignals()
        bot = make_user(
            followers_count=3, friends_count=900, description="",
            default_profile_image=True,
            created_at=PAPER_EPOCH - 30 * DAY)
        spam = make_tweets(["buy http://t.co/x"] * 10)
        verdict = signals.evaluate(bot, spam, NOW)
        assert verdict.is_fake
        assert len(verdict.fired) >= 4

    def test_human_not_detected(self):
        signals = StateOfSearchSignals()
        assert not signals.is_fake(make_user(), HUMAN_TWEETS, NOW)


class TestPredictInterface:
    def test_vectorised_predictions(self):
        for ruleset in BASELINE_RULESETS:
            predictions = ruleset.predict(
                [make_user(), make_user()], [HUMAN_TWEETS, HUMAN_TWEETS], NOW)
            assert predictions.shape == (2,)
            assert set(predictions) <= {0, 1}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BASELINE_RULESETS[0].predict([make_user()], [], NOW)
