"""Unit tests for the feature catalogue."""

import math

import pytest

from repro.api import UserObject
from repro.core import ConfigurationError, DAY, PAPER_EPOCH, YEAR
from repro.fc import (
    CLASS_A,
    CLASS_B,
    FEATURES,
    FEATURES_BY_NAME,
    FULL_FEATURE_SET,
    FeatureSet,
    PROFILE_FEATURE_SET,
)
from repro.twitter import Tweet

NOW = PAPER_EPOCH


def make_user(**overrides):
    defaults = dict(
        user_id=1, screen_name="u", name="User",
        created_at=PAPER_EPOCH - 2 * YEAR,
        description="bio", location="Rome", url="",
        default_profile_image=False, verified=False,
        followers_count=100, friends_count=200, statuses_count=730,
        last_status_at=PAPER_EPOCH - DAY,
    )
    defaults.update(overrides)
    return UserObject(**defaults)


def make_tweets(texts):
    return [Tweet(tweet_id=i, user_id=1, created_at=NOW - i, text=t)
            for i, t in enumerate(texts)]


class TestCatalogue:
    def test_unique_names(self):
        names = [f.name for f in FEATURES]
        assert len(set(names)) == len(names)

    def test_cost_classes_valid(self):
        assert {f.cost_class for f in FEATURES} == {CLASS_A, CLASS_B}

    def test_profile_set_is_class_a_only(self):
        assert not PROFILE_FEATURE_SET.needs_timeline()

    def test_full_set_needs_timeline(self):
        assert FULL_FEATURE_SET.needs_timeline()


class TestProfileFeatures:
    def test_log_counts(self):
        feature = FEATURES_BY_NAME["log_followers"]
        assert feature(make_user(followers_count=99), None, NOW) == \
            pytest.approx(math.log(100))

    def test_ff_ratio_feature(self):
        feature = FEATURES_BY_NAME["log_ff_ratio"]
        user = make_user(followers_count=10, friends_count=500)
        assert feature(user, None, NOW) == pytest.approx(math.log(51))

    def test_age_days(self):
        feature = FEATURES_BY_NAME["age_days"]
        assert feature(make_user(), None, NOW) == pytest.approx(730.5)

    def test_tweets_per_day(self):
        feature = FEATURES_BY_NAME["tweets_per_day"]
        assert feature(make_user(), None, NOW) == pytest.approx(1.0, abs=0.01)

    def test_boolean_flags(self):
        user = make_user(description="", default_profile_image=True)
        assert FEATURES_BY_NAME["has_bio"](user, None, NOW) == 0.0
        assert FEATURES_BY_NAME["default_image"](user, None, NOW) == 1.0

    def test_never_tweeted_sentinel(self):
        user = make_user(statuses_count=0, last_status_at=None)
        feature = FEATURES_BY_NAME["last_status_age_days"]
        assert feature(user, None, NOW) == 10_000.0


class TestTimelineFeatures:
    def test_link_fraction(self):
        tweets = make_tweets(
            ["see http://t.co/a", "plain", "go https://x.io", "plain"])
        feature = FEATURES_BY_NAME["link_fraction"]
        assert feature(make_user(), tweets, NOW) == 0.5

    def test_retweet_fraction(self):
        tweets = make_tweets(["RT @a: x", "hello"])
        assert FEATURES_BY_NAME["retweet_fraction"](
            make_user(), tweets, NOW) == 0.5

    def test_spam_fraction(self):
        tweets = make_tweets(["make money fast", "hello there"])
        assert FEATURES_BY_NAME["spam_fraction"](
            make_user(), tweets, NOW) == 0.5

    def test_duplicate_fraction_threshold(self):
        tweets = make_tweets(["same tweet"] * 4 + ["unique one"])
        assert FEATURES_BY_NAME["duplicate_fraction"](
            make_user(), tweets, NOW) == 0.8
        few = make_tweets(["same tweet"] * 3 + ["unique one"])
        assert FEATURES_BY_NAME["duplicate_fraction"](
            make_user(), few, NOW) == 0.0

    def test_empty_timeline_gives_zero(self):
        assert FEATURES_BY_NAME["link_fraction"](make_user(), [], NOW) == 0.0

    def test_class_b_requires_timeline(self):
        with pytest.raises(ConfigurationError):
            FEATURES_BY_NAME["link_fraction"](make_user(), None, NOW)


class TestFeatureSet:
    def test_from_names(self):
        feature_set = FeatureSet.from_names(["log_followers", "has_bio"])
        assert feature_set.names == ["log_followers", "has_bio"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSet.from_names(["nope"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSet([])

    def test_duplicate_rejected(self):
        feature = FEATURES_BY_NAME["has_bio"]
        with pytest.raises(ConfigurationError):
            FeatureSet([feature, feature])

    def test_extract_vector_shape_and_order(self):
        feature_set = FeatureSet.from_names(["has_bio", "has_location"])
        vector = feature_set.extract(make_user(location=""), None, NOW)
        assert list(vector) == [1.0, 0.0]

    def test_extract_matrix(self):
        feature_set = PROFILE_FEATURE_SET
        users = [make_user(), make_user(followers_count=5)]
        matrix = feature_set.extract_matrix(users, None, NOW)
        assert matrix.shape == (2, len(feature_set.features))

    def test_extract_matrix_empty(self):
        matrix = PROFILE_FEATURE_SET.extract_matrix([], None, NOW)
        assert matrix.shape == (0, len(PROFILE_FEATURE_SET.features))

    def test_matrix_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            FULL_FEATURE_SET.extract_matrix([make_user()], [], NOW)
