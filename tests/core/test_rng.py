"""Unit and property tests for seed derivation and distributions."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ConfigurationError,
    ZipfTable,
    bounded_int_lognormal,
    derive_seed,
    make_rng,
    poisson,
    weighted_choice,
    zipf_rank,
)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_distinct_paths_distinct_seeds(self):
        seeds = {derive_seed(42, "p", index) for index in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    @given(st.integers(), st.text(max_size=20))
    def test_property_in_64_bit_range(self, master, label):
        assert 0 <= derive_seed(master, label) < 2 ** 64


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(5, "x").random() == make_rng(5, "x").random()

    def test_path_changes_stream(self):
        assert make_rng(5, "x").random() != make_rng(5, "y").random()


class TestBoundedLognormal:
    def test_respects_bounds(self):
        rng = make_rng(1)
        values = [bounded_int_lognormal(rng, 10.0, 3.0, 5, 50)
                  for _ in range(500)]
        assert all(5 <= v <= 50 for v in values)

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded_int_lognormal(make_rng(1), 1.0, 1.0, 10, 5)


class TestZipf:
    def test_rank_in_range(self):
        rng = make_rng(2)
        assert all(1 <= zipf_rank(rng, 20) <= 20 for _ in range(200))

    def test_rank_one_most_frequent(self):
        rng = make_rng(3)
        draws = [zipf_rank(rng, 10) for _ in range(2000)]
        counts = {k: draws.count(k) for k in (1, 10)}
        assert counts[1] > counts[10]

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            zipf_rank(make_rng(1), 0)

    def test_table_matches_range(self):
        table = ZipfTable(50)
        rng = make_rng(4)
        assert all(1 <= table.draw(rng) <= 50 for _ in range(500))

    def test_table_invalid_n(self):
        with pytest.raises(ConfigurationError):
            ZipfTable(0)


class TestWeightedChoice:
    def test_zero_weight_never_chosen(self):
        rng = make_rng(5)
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0])
                 for _ in range(200)}
        assert picks == {"a"}

    def test_roughly_proportional(self):
        rng = make_rng(6)
        picks = [weighted_choice(rng, ["a", "b"], [3.0, 1.0])
                 for _ in range(4000)]
        share = picks.count("a") / len(picks)
        assert 0.70 <= share <= 0.80

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            weighted_choice(make_rng(1), ["a"], [1.0, 2.0])

    def test_empty_items(self):
        with pytest.raises(ConfigurationError):
            weighted_choice(make_rng(1), [], [])

    def test_negative_weight(self):
        with pytest.raises(ConfigurationError):
            weighted_choice(make_rng(1), ["a", "b"], [1.0, -1.0])


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(make_rng(1), 0.0) == 0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson(make_rng(1), -1.0)

    @pytest.mark.parametrize("lam", [0.5, 4.0, 80.0])
    def test_mean_close_to_lambda(self, lam):
        rng = make_rng(7, lam)
        draws = [poisson(rng, lam) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - lam) < max(0.2, 0.1 * lam)

    def test_always_non_negative(self):
        rng = make_rng(8)
        assert all(poisson(rng, 50.0) >= 0 for _ in range(500))
