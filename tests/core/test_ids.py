"""Unit and property tests for snowflake id generation."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ConfigurationError,
    IdGenerator,
    snowflake,
    snowflake_timestamp,
)
from repro.core.ids import SNOWFLAKE_EPOCH_MS


class TestSnowflake:
    def test_timestamp_roundtrip(self):
        ts = 1_393_632_000.0  # 2014-03-01
        assert abs(snowflake_timestamp(snowflake(ts)) - ts) < 0.001

    def test_monotone_in_timestamp(self):
        assert snowflake(1_400_000_000.0) > snowflake(1_399_999_999.0)

    def test_sequence_breaks_ties(self):
        ts = 1_400_000_000.0
        assert snowflake(ts, sequence=1) > snowflake(ts, sequence=0)

    def test_pre_epoch_timestamps_clamp_to_zero(self):
        assert snowflake_timestamp(snowflake(0.0)) == SNOWFLAKE_EPOCH_MS / 1000.0

    def test_worker_out_of_range(self):
        with pytest.raises(ConfigurationError):
            snowflake(1e9, worker=1024)

    def test_sequence_out_of_range(self):
        with pytest.raises(ConfigurationError):
            snowflake(1e9, sequence=4096)

    def test_negative_id_rejected_on_decode(self):
        with pytest.raises(ConfigurationError):
            snowflake_timestamp(-1)


class TestIdGenerator:
    def test_unique_for_identical_timestamps(self):
        gen = IdGenerator()
        ids = [gen.next_id(1_400_000_000.0) for _ in range(5000)]
        assert len(set(ids)) == 5000

    def test_strictly_increasing(self):
        gen = IdGenerator()
        ids = [gen.next_id(1_400_000_000.0) for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_survives_backwards_timestamps(self):
        gen = IdGenerator()
        first = gen.next_id(1_400_000_000.0)
        second = gen.next_id(1_300_000_000.0)
        assert second > first

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            IdGenerator(worker=-1)

    @given(st.lists(
        st.floats(min_value=0, max_value=2_000_000_000,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300))
    def test_property_always_strictly_increasing(self, timestamps):
        gen = IdGenerator()
        ids = [gen.next_id(ts) for ts in timestamps]
        assert all(a < b for a, b in zip(ids, ids[1:]))
