"""Unit tests for time constants and helpers."""

import pytest

from repro.core import (
    DAY,
    HOUR,
    MINUTE,
    PAPER_EPOCH,
    TWITTER_LAUNCH,
    WEEK,
    YEAR,
    days_between,
    format_duration,
    isoformat,
    timestamp,
    to_datetime,
)


class TestConstants:
    def test_units_compose(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert YEAR == 365.25 * DAY

    def test_paper_epoch_after_twitter_launch(self):
        assert PAPER_EPOCH > TWITTER_LAUNCH

    def test_paper_epoch_is_march_2014(self):
        assert isoformat(PAPER_EPOCH) == "2014-03-01T00:00:00Z"


class TestTimestamp:
    def test_roundtrip_through_datetime(self):
        ts = timestamp(2014, 3, 15, 12, 30, 45)
        dt = to_datetime(ts)
        assert (dt.year, dt.month, dt.day) == (2014, 3, 15)
        assert (dt.hour, dt.minute, dt.second) == (12, 30, 45)


class TestFormatDuration:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0, "0.0s"),
        (42.0, "42.0s"),
        (90.0, "1.5m"),
        (2 * HOUR, "2.0h"),
        (27 * DAY, "27.0d"),
    ])
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestDaysBetween:
    def test_whole_days(self):
        assert days_between(0.0, 3 * DAY) == 3.0

    def test_fractional_and_negative(self):
        assert days_between(DAY, 0.0) == -1.0
        assert days_between(0.0, DAY / 2) == 0.5
