"""Unit tests for the simulated clock."""

import pytest

from repro.core import ClockError, PAPER_EPOCH, SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_paper_epoch_by_default(self):
        assert SimClock().now() == PAPER_EPOCH

    def test_custom_start(self):
        assert SimClock(123.0).now() == 123.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock(100.0)
        assert clock.advance(5.5) == 105.5
        assert clock.now() == 105.5

    def test_advance_zero_is_noop(self):
        clock = SimClock(100.0)
        clock.advance(0.0)
        assert clock.now() == 100.0

    def test_advance_negative_rejected(self):
        clock = SimClock(100.0)
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = SimClock(100.0)
        clock.advance_to(250.0)
        assert clock.now() == 250.0

    def test_advance_to_same_instant_is_noop(self):
        clock = SimClock(100.0)
        clock.advance_to(100.0)
        assert clock.now() == 100.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(100.0)
        with pytest.raises(ClockError):
            clock.advance_to(99.9)

    def test_elapsed_since(self):
        clock = SimClock(100.0)
        clock.advance(30.0)
        assert clock.elapsed_since(100.0) == 30.0


class TestStopwatch:
    def test_measures_elapsed_simulated_time(self):
        clock = SimClock(0.0)
        watch = Stopwatch(clock)
        clock.advance(42.0)
        assert watch.elapsed() == 42.0

    def test_restart_resets_the_mark(self):
        clock = SimClock(0.0)
        watch = Stopwatch(clock)
        clock.advance(10.0)
        watch.restart()
        clock.advance(7.0)
        assert watch.elapsed() == 7.0
