"""Meta-test: every public item in the library is documented.

Deliverable (e) demands doc comments on every public item; this test
makes the requirement executable.  A public item is a module, class,
function or method whose name does not start with an underscore,
reachable from the ``repro`` package.
"""

import importlib
import inspect
import pathlib
import pkgutil

import repro

IGNORED_METHOD_NAMES = {
    # dataclass/enum machinery and dunder-adjacent generated members.
    "mro",
}


def iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    yield repro
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(obj, "__module__", None) == module.__name__
        if not defined_here:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__ for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_has_a_docstring(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_method_has_a_docstring(self):
        undocumented = []
        for module in iter_modules():
            for class_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_") or name in IGNORED_METHOD_NAMES:
                        continue
                    if not (inspect.isfunction(member)
                            or isinstance(member, property)):
                        continue
                    target = member.fget if isinstance(member, property) \
                        else member
                    if not (inspect.getdoc(target) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{class_name}.{name}")
        assert undocumented == []
