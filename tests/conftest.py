"""Shared fixtures for the test suite.

Expensive artefacts (the trained detector, a reusable small world) are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import PAPER_EPOCH, SimClock
from repro.fc import build_gold_standard, default_detector
from repro.twitter import add_simple_target, build_world


@pytest.fixture(scope="session")
def detector():
    """A small but competent production-style (class A) detector."""
    return default_detector(seed=0, gold_size=200)


@pytest.fixture(scope="session")
def gold():
    """A mid-sized binary gold standard (active fakes vs active genuine)."""
    return build_gold_standard(n_fake=250, n_genuine=250, seed=77)


@pytest.fixture(scope="session")
def small_world():
    """A lazy world with one 12K-follower target ('smalltown').

    Composition: 40% inactive / 10% fake / 50% genuine, default tilt,
    growing by 50 followers/day after the reference instant.
    """
    world = build_world(seed=11, ref_time=PAPER_EPOCH)
    add_simple_target(world, "smalltown", 12_000, 0.4, 0.1, 0.5,
                      daily_new_followers=50)
    return world


@pytest.fixture
def clock():
    """A fresh clock at the paper epoch."""
    return SimClock(PAPER_EPOCH)
