"""Unit and integration tests for the fake-follower marketplace."""

import pytest

from repro.core import ConfigurationError, DAY, HOUR, PAPER_EPOCH, SimClock, YEAR
from repro.market import (
    CHEAP_BULK,
    Marketplace,
    PREMIUM_DRIP,
    PRESET_SELLERS,
    STANDARD,
    SellerProfile,
)
from repro.twitter import Account, Label, LiveSimulation, SocialGraph


def make_simulation(seed=5):
    graph = SocialGraph(seed=1)
    graph.add_account(Account(
        user_id=700, screen_name="buyer",
        created_at=PAPER_EPOCH - 2 * YEAR,
        statuses_count=50, last_tweet_at=PAPER_EPOCH - HOUR))
    return LiveSimulation(graph, SimClock(PAPER_EPOCH), seed=seed)


class TestSellerProfile:
    def test_presets_are_valid_and_ordered_by_price(self):
        prices = [seller.price_per_thousand for seller in PRESET_SELLERS]
        assert prices == sorted(prices)

    def test_pricing(self):
        assert STANDARD.price(5000) == pytest.approx(40.0)
        assert CHEAP_BULK.price(1000) == pytest.approx(2.0)

    def test_delivery_hours(self):
        assert CHEAP_BULK.delivery_hours(10_000) == pytest.approx(2.0)
        assert PREMIUM_DRIP.delivery_hours(600) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SellerProfile("", 1.0, {"fake_classic": 1.0}, 100, 0.01)
        with pytest.raises(ConfigurationError):
            SellerProfile("x", 1.0, {"nope": 1.0}, 100, 0.01)
        with pytest.raises(ConfigurationError):
            SellerProfile("x", 1.0, {"fake_classic": 1.0}, 0, 0.01)
        with pytest.raises(ConfigurationError):
            SellerProfile("x", 1.0, {"fake_classic": 1.0}, 100, 1.0)
        with pytest.raises(ConfigurationError):
            STANDARD.price(0)


class TestOrderFulfilment:
    def test_bulk_order_delivers_within_hours(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        order = market.place_order(CHEAP_BULK, 700, quantity=8000)
        assert order.price == pytest.approx(16.0)
        simulation.run_for(4 * HOUR)
        assert order.fully_delivered
        assert simulation.graph.follower_count(
            700, simulation.now()) == 8000

    def test_drip_order_spreads_over_days(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        order = market.place_order(PREMIUM_DRIP, 700, quantity=2000)
        simulation.run_for(12 * HOUR)
        assert 0 < order.delivered < 2000  # still dripping
        simulation.run_for(2 * DAY)
        assert order.fully_delivered

    def test_delivered_accounts_are_fake_personas(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        market.place_order(STANDARD, 700, quantity=500)
        simulation.run_for(6 * HOUR)
        graph = simulation.graph
        now = simulation.now()
        for uid in graph.follower_ids(700, 0, 500, now):
            label = graph.account_by_id(uid, now).true_label
            assert label in (Label.FAKE, Label.INACTIVE)

    def test_attrition_erodes_the_block(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        order = market.place_order(CHEAP_BULK, 700, quantity=5000)
        simulation.run_for(2 * HOUR)
        assert order.fully_delivered
        simulation.run_for(30 * DAY)
        # ~4%/day for 30 days: roughly 30% gone (1 - 0.96^30 ~ 0.71
        # retention), with Poisson noise.
        assert order.retained < 0.85 * order.delivered
        assert simulation.graph.follower_count(
            700, simulation.now()) == order.retained

    def test_premium_attrition_is_negligible(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        order = market.place_order(PREMIUM_DRIP, 700, quantity=600)
        simulation.run_for(40 * DAY)
        assert order.retained > 0.9 * order.delivered

    def test_quantity_validated(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        with pytest.raises(ConfigurationError):
            market.place_order(STANDARD, 700, quantity=0)

    def test_orders_tracked(self):
        simulation = make_simulation()
        market = Marketplace(simulation, seed=2)
        market.place_order(STANDARD, 700, quantity=100)
        market.place_order(CHEAP_BULK, 700, quantity=100)
        assert len(market.orders) == 2


class TestBurstVisibility:
    def test_bulk_purchase_trips_the_growth_monitor(self):
        """End to end: marketplace delivery -> daily poller -> alert."""
        from repro.growth import GrowthMonitor
        from repro.twitter import OrganicGrowthProcess
        simulation = make_simulation(seed=11)
        simulation.add_process(OrganicGrowthProcess(700, per_day=80.0))
        market = Marketplace(simulation, seed=3)
        monitor = GrowthMonitor(simulation.graph, simulation.clock)

        observations = []
        for day in range(15):
            if day == 8:
                market.place_order(CHEAP_BULK, 700, quantity=6000)
            observations.append((
                simulation.now(),
                simulation.graph.follower_count(700, simulation.now())))
            simulation.run_for(DAY)
        from repro.growth import BurstDetector, series_from_observations
        series = series_from_observations(observations)
        events = BurstDetector().detect(series)
        assert events
        assert events[0].day == 8
        assert events[0].excess > 4000
