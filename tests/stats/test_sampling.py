"""Unit and property tests for sampling schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import make_rng
from repro.core.errors import SamplingError
from repro.stats import (
    head_sample,
    head_then_subsample,
    systematic_sample,
    uniform_sample,
)


class TestUniformSample:
    def test_distinct_and_in_range(self):
        positions = uniform_sample(make_rng(1), 1000, 100)
        assert len(set(positions)) == 100
        assert all(0 <= p < 1000 for p in positions)
        assert positions == sorted(positions)

    def test_full_census(self):
        assert uniform_sample(make_rng(1), 5, 5) == [0, 1, 2, 3, 4]

    def test_oversampling_rejected(self):
        with pytest.raises(SamplingError):
            uniform_sample(make_rng(1), 10, 11)

    def test_covers_whole_range_on_average(self):
        positions = uniform_sample(make_rng(2), 100_000, 2000)
        mean = sum(positions) / len(positions)
        assert 45_000 <= mean <= 55_000

    @given(st.integers(min_value=1, max_value=5000), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_valid_sample(self, population, data):
        n = data.draw(st.integers(min_value=1, max_value=population))
        positions = uniform_sample(make_rng(7), population, n)
        assert len(positions) == n == len(set(positions))
        assert all(0 <= p < population for p in positions)


class TestHeadSample:
    def test_takes_newest_positions(self):
        assert head_sample(100, 3) == [97, 98, 99]

    def test_full_head(self):
        assert head_sample(5, 5) == [0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(SamplingError):
            head_sample(10, 0)
        with pytest.raises(SamplingError):
            head_sample(10, 11)


class TestHeadThenSubsample:
    def test_stays_within_head(self):
        positions = head_then_subsample(make_rng(3), 100_000, 35_000, 700)
        assert len(positions) == 700
        assert all(p >= 65_000 for p in positions)

    def test_head_clamped_to_population(self):
        positions = head_then_subsample(make_rng(3), 1000, 35_000, 700)
        assert all(0 <= p < 1000 for p in positions)

    def test_sample_larger_than_head_rejected(self):
        with pytest.raises(SamplingError):
            head_then_subsample(make_rng(3), 1000, 100, 200)


class TestSystematicSample:
    def test_even_spacing(self):
        assert systematic_sample(100, 4) == [0, 25, 50, 75]

    def test_offset(self):
        assert systematic_sample(100, 4, start=10) == [10, 35, 60, 85]

    def test_invalid_start(self):
        with pytest.raises(SamplingError):
            systematic_sample(100, 4, start=100)
