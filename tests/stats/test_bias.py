"""Unit tests for head-sampling bias quantification."""

import pytest

from repro.core.errors import SamplingError
from repro.stats import (
    gradient_head_bias,
    head_sampling_bias,
    purchased_burst_rates,
)


class TestPurchasedBurstRates:
    def test_paper_worked_example(self):
        """100K genuine + 10K bought, 1K head: 100% vs ~9% (Sec. II-A)."""
        report = purchased_burst_rates(100_000, 10_000, head_size=1000)
        assert report.head_rate == 1.0
        assert report.whole_rate == pytest.approx(10_000 / 110_000)
        assert report.absolute_bias == pytest.approx(0.909, abs=0.001)

    def test_head_larger_than_burst_dilutes(self):
        report = purchased_burst_rates(100_000, 10_000, head_size=35_000)
        assert report.head_rate == pytest.approx(10_000 / 35_000)

    def test_no_purchase_no_bias(self):
        report = purchased_burst_rates(1000, 0, head_size=100)
        assert report.head_rate == 0.0
        assert report.relative_bias == 0.0

    def test_relative_bias_infinite_when_truth_zero(self):
        report = purchased_burst_rates(0, 10, head_size=5)
        assert report.whole_rate == 1.0  # all fake
        report2 = purchased_burst_rates(10, 0, head_size=5)
        assert report2.relative_bias == 0.0

    def test_validation(self):
        with pytest.raises(SamplingError):
            purchased_burst_rates(-1, 10, head_size=1)
        with pytest.raises(SamplingError):
            purchased_burst_rates(0, 0, head_size=1)
        with pytest.raises(SamplingError):
            purchased_burst_rates(10, 10, head_size=0)


class TestHeadSamplingBias:
    def test_gradient_population(self):
        """Property present only in the first half of arrivals."""
        report = head_sampling_bias(
            lambda position: position < 500, 1000, head_size=100)
        assert report.whole_rate == 0.5
        assert report.head_rate == 0.0
        assert report.absolute_bias == -0.5

    def test_subset_frame_estimation(self):
        report = head_sampling_bias(
            lambda position: position % 2 == 0, 1000, head_size=10,
            positions=range(0, 1000, 10))
        assert report.whole_rate == 1.0  # every 10th is even
        assert report.head_rate == 0.5

    def test_validation(self):
        with pytest.raises(SamplingError):
            head_sampling_bias(lambda p: True, 0, 1)
        with pytest.raises(SamplingError):
            head_sampling_bias(lambda p: True, 10, 11)
        with pytest.raises(SamplingError):
            head_sampling_bias(lambda p: True, 10, 5, positions=[])
        with pytest.raises(SamplingError):
            head_sampling_bias(lambda p: True, 10, 5, positions=[10])


class TestGradientClosedForm:
    def test_zero_tilt_no_bias(self):
        assert gradient_head_bias(0.4, 0.0, 0.1) == 0.0

    def test_full_frame_no_bias(self):
        assert gradient_head_bias(0.4, 0.5, 1.0) == pytest.approx(0.0)

    def test_head_underestimates_inactivity(self):
        bias = gradient_head_bias(0.4, 0.5, 0.05)
        assert bias == pytest.approx(-0.19)

    def test_matches_empirical_gradient(self):
        """Closed form agrees with a discrete linear-gradient population."""
        base, tilt, n = 0.4, 0.5, 200_000
        head = 10_000

        def rate_at(position):
            x = position / (n - 1)
            return base * (1 + tilt * (1 - 2 * x))

        # Deterministic thinning: property 'true' with probability rate.
        def property_at(position):
            return (position * 2654435761 % 2**32) / 2**32 < rate_at(position)

        report = head_sampling_bias(property_at, n, head)
        predicted = gradient_head_bias(base, tilt, head / n)
        assert report.absolute_bias == pytest.approx(predicted, abs=0.02)

    def test_validation(self):
        with pytest.raises(SamplingError):
            gradient_head_bias(1.5, 0.1, 0.1)
        with pytest.raises(SamplingError):
            gradient_head_bias(0.5, 1.0, 0.1)
        with pytest.raises(SamplingError):
            gradient_head_bias(0.5, 0.5, 0.0)
