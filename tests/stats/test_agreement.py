"""Unit tests for inter-tool agreement statistics."""

import pytest

from repro.core import ConfigurationError
from repro.stats import agreement_matrix, kendall_tau


class TestKendallTau:
    def test_perfect_concordance(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_discordance(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_independent_is_near_zero(self):
        assert abs(kendall_tau([1, 2, 3, 4], [20, 10, 40, 30])) < 0.5

    def test_ties_handled(self):
        tau = kendall_tau([1, 1, 2, 3], [1, 2, 2, 3])
        assert -1.0 <= tau <= 1.0

    def test_all_tied_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kendall_tau([1], [1])
        with pytest.raises(ConfigurationError):
            kendall_tau([1, 2], [1])


class TestAgreementMatrix:
    @pytest.fixture
    def matrix(self):
        return agreement_matrix({
            "fc": [10.0, 20.0, 30.0, 40.0],
            "ta": [12.0, 22.0, 32.0, 42.0],   # fc + 2: close, same ranking
            "sp": [40.0, 10.0, 35.0, 5.0],    # unrelated
        })

    def test_pairwise_diffs(self, matrix):
        assert matrix.mean_abs_diff[("fc", "ta")] == pytest.approx(2.0)
        assert matrix.mean_abs_diff[("fc", "sp")] > 10.0

    def test_rank_agreement(self, matrix):
        assert matrix.kendall_tau[("fc", "ta")] == 1.0
        assert matrix.kendall_tau[("fc", "sp")] < 0.5

    def test_closest_and_most_discordant(self, matrix):
        assert matrix.closest_pair() == ("fc", "ta")
        assert "sp" in matrix.most_discordant_pair()

    def test_disagreement_index_positive(self, matrix):
        assert matrix.disagreement_index > 5.0

    def test_identical_tools_agree_perfectly(self):
        matrix = agreement_matrix({
            "a": [1.0, 2.0, 3.0],
            "b": [1.0, 2.0, 3.0],
        })
        assert matrix.mean_abs_diff[("a", "b")] == 0.0
        assert matrix.disagreement_index == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            agreement_matrix({"only": [1.0, 2.0]})
        with pytest.raises(ConfigurationError):
            agreement_matrix({"a": [1.0, 2.0], "b": [1.0]})
        with pytest.raises(ConfigurationError):
            agreement_matrix({"a": [1.0], "b": [2.0]})


class TestOnTable3Rows:
    def test_integration_with_measured_reports(self, detector):
        """The agreement machinery runs directly on Table III rows."""
        from repro.experiments import LOW, accounts_in_tiers, run_table3
        rows, __ = run_table3(
            seed=23, accounts=accounts_in_tiers(LOW), detector=detector)
        estimates = {
            tool: [row.reports[tool].fake_pct for row in rows]
            for tool in ("fc", "twitteraudit", "statuspeople",
                         "socialbakers")
        }
        matrix = agreement_matrix(estimates)
        assert matrix.disagreement_index > 0.0
        # Tools broadly agree on *ranking* even while disagreeing on
        # levels — the structural signature of shared-but-biased frames.
        taus = list(matrix.kendall_tau.values())
        assert all(-1.0 <= tau <= 1.0 for tau in taus)
