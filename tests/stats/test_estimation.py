"""Unit and property tests for proportion estimation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError
from repro.stats import (
    ProportionEstimate,
    Z_95,
    Z_99,
    achieved_margin,
    finite_population_correction,
    required_sample_size,
    required_sample_size_fpc,
    z_critical,
)


class TestZCritical:
    def test_paper_values(self):
        assert z_critical(0.95) == Z_95 == 1.96
        assert z_critical(0.99) == Z_99 == 2.58

    def test_other_levels_via_erfinv(self):
        assert z_critical(0.80) == pytest.approx(1.2816, abs=0.01)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            z_critical(0.0)
        with pytest.raises(ConfigurationError):
            z_critical(1.0)


class TestProportionEstimate:
    def test_point_estimate_and_sigma(self):
        est = ProportionEstimate(positives=300, sample_size=1000)
        assert est.p_hat == 0.3
        assert est.std_error == pytest.approx(
            math.sqrt(0.3 * 0.7 / 1000))

    def test_wald_interval_paper_formula(self):
        est = ProportionEstimate(positives=500, sample_size=1000)
        low, high = est.wald_interval(0.95)
        half = 1.96 * est.std_error
        assert low == pytest.approx(0.5 - half)
        assert high == pytest.approx(0.5 + half)

    def test_wald_clipped_to_unit_interval(self):
        est = ProportionEstimate(positives=0, sample_size=10)
        low, high = est.wald_interval()
        assert low == 0.0 and high <= 1.0

    def test_wilson_inside_unit_interval_at_extremes(self):
        est = ProportionEstimate(positives=0, sample_size=10)
        low, high = est.wilson_interval()
        assert 0.0 <= low < high <= 1.0
        assert high > 0.0  # Wilson is informative where Wald collapses

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProportionEstimate(positives=5, sample_size=0)
        with pytest.raises(ConfigurationError):
            ProportionEstimate(positives=11, sample_size=10)
        with pytest.raises(ConfigurationError):
            ProportionEstimate(positives=-1, sample_size=10)

    @given(st.integers(min_value=1, max_value=10_000), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_intervals_contain_point_estimate(self, n, data):
        positives = data.draw(st.integers(min_value=0, max_value=n))
        est = ProportionEstimate(positives, n)
        for low, high in (est.wald_interval(), est.wilson_interval()):
            assert low <= est.p_hat + 1e-12
            assert est.p_hat - 1e-12 <= high


class TestSampleSize:
    def test_paper_sample_size_is_9604(self):
        assert required_sample_size(0.01, 0.95) == 9604

    def test_99_level_needs_more(self):
        assert required_sample_size(0.01, 0.99) > 9604

    def test_smaller_margin_needs_more(self):
        assert required_sample_size(0.005) > required_sample_size(0.01)

    def test_off_centre_p_needs_fewer(self):
        assert required_sample_size(0.01, p=0.1) < 9604

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_sample_size(0.0)
        with pytest.raises(ConfigurationError):
            required_sample_size(0.01, p=1.5)

    def test_achieved_margin_inverse(self):
        assert achieved_margin(9604) == pytest.approx(0.01, abs=1e-4)
        assert achieved_margin(700) == pytest.approx(0.037, abs=0.001)

    @given(st.floats(min_value=0.005, max_value=0.2))
    @settings(max_examples=40)
    def test_property_required_size_achieves_margin(self, margin):
        n = required_sample_size(margin)
        assert achieved_margin(n) <= margin + 1e-12
        if n > 1:
            assert achieved_margin(n - 1) > margin


class TestFinitePopulation:
    def test_fpc_full_census_is_zero(self):
        assert finite_population_correction(100, 100) == 0.0

    def test_fpc_tiny_sample_near_one(self):
        assert finite_population_correction(1, 10**6) == pytest.approx(1.0)

    def test_fpc_validation(self):
        with pytest.raises(ConfigurationError):
            finite_population_correction(0, 10)
        with pytest.raises(ConfigurationError):
            finite_population_correction(11, 10)

    def test_fpc_sample_size_capped_by_population(self):
        assert required_sample_size_fpc(0.01, population=2971) <= 2971

    def test_fpc_converges_to_infinite_case(self):
        assert required_sample_size_fpc(0.01, population=10**9) \
            == pytest.approx(9604, abs=2)

    def test_fpc_shrinks_for_small_populations(self):
        assert required_sample_size_fpc(0.01, population=20_000) < 9604
